//! Incremental reading from any [`std::io::Read`].
//!
//! Ark cycle dumps run to gigabytes; [`WartsStreamReader`] reads one
//! record at a time from a buffered source instead of slurping the file
//! — pairing naturally with `lpr_core::stream::CycleAccumulator` for a
//! bounded-memory end-to-end pipeline:
//!
//! ```no_run
//! use warts::{Record, WartsStreamReader};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let file = std::fs::File::open("cycle.warts")?;
//! let mut reader = WartsStreamReader::new(std::io::BufReader::new(file));
//! while let Some(record) = reader.next_record()? {
//!     if let Record::Trace(t) = record {
//!         // feed a CycleAccumulator…
//!         let _ = t;
//!     }
//! }
//! # Ok(())
//! # }
//! ```

use crate::addr::AddrTableReader;
use crate::buf::Cursor;
use crate::cycle::{CycleRecord, CycleStopRecord};
use crate::error::WartsError;
use crate::file::{Record, RecordType, WARTS_MAGIC};
use crate::list::ListRecord;
use crate::ping::PingRecord;
use crate::trace::TraceRecord;
use lpr_obs::{Counter, Registry};
use std::collections::BTreeMap;
use std::io::Read;
use std::sync::Arc;

/// Largest record body this reader will buffer (64 MiB — far above any
/// real scamper record; a larger length indicates corruption).
pub const MAX_RECORD_LEN: usize = 64 << 20;

/// Why a lenient reader skipped (part of) a stream instead of decoding
/// a record from it.
///
/// The taxonomy mirrors the decode failure modes: the first four are
/// framing-level (the stream had to be resynchronised or ended early),
/// the rest are body-level (framing was intact, the record content was
/// not). [`SkipReason::ALL`] lists every variant in counter order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SkipReason {
    /// Bytes at a record boundary that are not a plausible header; the
    /// reader scanned forward to the next candidate (one skip per
    /// contiguous garbage run).
    BadMagic = 0,
    /// The stream ended inside a record header.
    TruncatedHeader = 1,
    /// A header declared a length beyond [`MAX_RECORD_LEN`].
    InsaneLength = 2,
    /// The stream ended before a record's declared body length.
    TruncatedBody = 3,
    /// A record body ran out of bytes while decoding.
    Truncated = 4,
    /// A body decoded to a different length than its header declared.
    LengthMismatch = 5,
    /// A bad address: unknown dictionary reference or malformed entry.
    BadAddress = 6,
    /// A malformed flag/parameter block.
    ParamError = 7,
    /// A malformed ICMP extension block.
    BadIcmpExt = 8,
    /// A record using a feature this crate does not support.
    Unsupported = 9,
}

impl SkipReason {
    /// Every reason, in counter order (`reason as usize` indexes it).
    pub const ALL: [SkipReason; 10] = [
        SkipReason::BadMagic,
        SkipReason::TruncatedHeader,
        SkipReason::InsaneLength,
        SkipReason::TruncatedBody,
        SkipReason::Truncated,
        SkipReason::LengthMismatch,
        SkipReason::BadAddress,
        SkipReason::ParamError,
        SkipReason::BadIcmpExt,
        SkipReason::Unsupported,
    ];

    /// Short machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SkipReason::BadMagic => "bad_magic",
            SkipReason::TruncatedHeader => "truncated_header",
            SkipReason::InsaneLength => "insane_length",
            SkipReason::TruncatedBody => "truncated_body",
            SkipReason::Truncated => "truncated",
            SkipReason::LengthMismatch => "length_mismatch",
            SkipReason::BadAddress => "bad_address",
            SkipReason::ParamError => "param_error",
            SkipReason::BadIcmpExt => "bad_icmp_ext",
            SkipReason::Unsupported => "unsupported",
        }
    }

    /// The registry counter this reason tallies under (a constant from
    /// [`lpr_obs::names`], the workspace metric vocabulary).
    pub fn counter_name(self) -> &'static str {
        match self {
            SkipReason::BadMagic => lpr_obs::names::WARTS_SKIP_BAD_MAGIC,
            SkipReason::TruncatedHeader => lpr_obs::names::WARTS_SKIP_TRUNCATED_HEADER,
            SkipReason::InsaneLength => lpr_obs::names::WARTS_SKIP_INSANE_LENGTH,
            SkipReason::TruncatedBody => lpr_obs::names::WARTS_SKIP_TRUNCATED_BODY,
            SkipReason::Truncated => lpr_obs::names::WARTS_SKIP_TRUNCATED,
            SkipReason::LengthMismatch => lpr_obs::names::WARTS_SKIP_LENGTH_MISMATCH,
            SkipReason::BadAddress => lpr_obs::names::WARTS_SKIP_BAD_ADDRESS,
            SkipReason::ParamError => lpr_obs::names::WARTS_SKIP_PARAM_ERROR,
            SkipReason::BadIcmpExt => lpr_obs::names::WARTS_SKIP_BAD_ICMP_EXT,
            SkipReason::Unsupported => lpr_obs::names::WARTS_SKIP_UNSUPPORTED,
        }
    }

    /// Classifies a body-decode error.
    pub fn of(err: &WartsError) -> SkipReason {
        match err {
            WartsError::BadMagic { .. } => SkipReason::BadMagic,
            WartsError::Truncated { .. } => SkipReason::Truncated,
            WartsError::LengthMismatch { .. } => SkipReason::LengthMismatch,
            WartsError::UnknownAddrId { .. } | WartsError::BadAddrType { .. } => {
                SkipReason::BadAddress
            }
            WartsError::ParamOverrun { .. } | WartsError::UnterminatedString => {
                SkipReason::ParamError
            }
            WartsError::BadIcmpExt { .. } => SkipReason::BadIcmpExt,
            WartsError::Unsupported { .. } => SkipReason::Unsupported,
        }
    }
}

/// Ingest counters for a warts stream, registered under `warts.*`.
///
/// Hand one to [`WartsStreamReader::with_metrics`] and the reader tallies
/// what it sees; the same counters can be read back later from the
/// registry (or a `Recorder`) that created them.
#[derive(Clone)]
pub struct StreamMetrics {
    /// Records decoded successfully (`warts.records`).
    pub records: Arc<Counter>,
    /// Bytes consumed, headers included (`warts.bytes`).
    pub bytes: Arc<Counter>,
    /// Trace records among them (`warts.traces`).
    pub traces: Arc<Counter>,
    /// Total skips in lenient mode, every reason included
    /// (`warts.malformed_records`). Always equals the sum of the
    /// per-reason counters in [`StreamMetrics::skips`].
    pub malformed: Arc<Counter>,
    /// Records of a type this crate does not parse
    /// (`warts.unsupported_records`).
    pub unsupported: Arc<Counter>,
    /// ICMP extension objects that are not RFC 4950 MPLS stacks
    /// (`warts.unknown_icmp_ext`).
    pub unknown_icmp_ext: Arc<Counter>,
    /// Per-reason skip counters (`warts.skip.<reason>`), indexed in
    /// [`SkipReason::ALL`] order.
    pub skips: [Arc<Counter>; SkipReason::ALL.len()],
    /// Garbage bytes discarded while resynchronising
    /// (`warts.resync_bytes`).
    pub resync_bytes: Arc<Counter>,
    /// Optional event journal: every lenient skip records a
    /// `warts-skip` warn event alongside its counter (disabled by
    /// default — counting costs nothing extra).
    pub tracer: lpr_obs::Tracer,
}

impl StreamMetrics {
    /// Binds the `warts.*` counters in `registry` (creating them at
    /// zero on first use).
    pub fn from_registry(registry: &Registry) -> Self {
        StreamMetrics {
            records: registry.counter(lpr_obs::names::WARTS_RECORDS),
            bytes: registry.counter(lpr_obs::names::WARTS_BYTES),
            traces: registry.counter(lpr_obs::names::WARTS_TRACES),
            malformed: registry.counter(lpr_obs::names::WARTS_MALFORMED_RECORDS),
            unsupported: registry.counter(lpr_obs::names::WARTS_UNSUPPORTED_RECORDS),
            unknown_icmp_ext: registry.counter(lpr_obs::names::WARTS_UNKNOWN_ICMP_EXT),
            skips: SkipReason::ALL.map(|r| registry.counter(r.counter_name())),
            resync_bytes: registry.counter(lpr_obs::names::WARTS_RESYNC_BYTES),
            tracer: lpr_obs::Tracer::disabled(),
        }
    }

    /// [`StreamMetrics::from_registry`] over a recorder's registry,
    /// inheriting its tracer so skips journal warn events too.
    pub fn from_recorder(recorder: &lpr_obs::Recorder) -> Self {
        Self::from_registry(recorder.registry()).with_tracer(recorder.tracer().clone())
    }

    /// Attaches an event journal (see the `tracer` field).
    pub fn with_tracer(mut self, tracer: lpr_obs::Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    fn skip(&self, reason: SkipReason) {
        self.malformed.inc();
        self.skips[reason as usize].inc();
        if self.tracer.would_log(lpr_obs::Level::Warn) {
            self.tracer.event(
                self.tracer.default_parent(),
                lpr_obs::Level::Warn,
                "warts-skip",
                vec![("reason".to_string(), lpr_obs::FieldValue::Str(reason.name().to_string()))],
            );
        }
    }

    fn observe(&self, wire_len: usize, record: &Record) {
        self.records.inc();
        self.bytes.add(wire_len as u64);
        match record {
            Record::Trace(t) => {
                self.traces.inc();
                for hop in &t.hops {
                    for ext in &hop.icmp_exts {
                        if !ext.is_mpls() {
                            self.unknown_icmp_ext.inc();
                        }
                    }
                }
            }
            Record::Unsupported { .. } => self.unsupported.inc(),
            _ => {}
        }
    }
}

/// The wire position of one successfully decoded record: where its
/// 8-byte header starts, how long its body is, and its type code.
///
/// Spans are what the out-of-core record index stores per record — an
/// index-driven re-decode slices `bytes[offset + 8 .. offset + 8 +
/// body_len]` straight out of a memory-mapped file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordSpan {
    /// Byte offset of the record header from the start of the stream.
    pub offset: u64,
    /// Declared body length (the header's length field).
    pub body_len: u32,
    /// Record type code (e.g. `RecordType::Trace as u16`).
    pub record_type: u16,
}

impl RecordSpan {
    /// Total bytes on the wire, header included.
    pub fn wire_len(&self) -> u64 {
        8 + self.body_len as u64
    }
}

/// A record-at-a-time reader over any byte source.
pub struct WartsStreamReader<R: Read> {
    source: R,
    addrs: AddrTableReader,
    offset: usize,
    failed: bool,
    metrics: Option<StreamMetrics>,
    lenient: bool,
    elide_unsupported: bool,
    /// Bytes read from `source` but not yet consumed
    /// (`buf[buf_pos..]`); lenient resynchronisation scans here.
    buf: Vec<u8>,
    buf_pos: usize,
    eof: bool,
    skips: BTreeMap<SkipReason, u64>,
    resync_bytes: u64,
    last_span: Option<RecordSpan>,
}

/// Errors from streaming reads: IO or decode.
#[derive(Debug)]
pub enum StreamError {
    /// The underlying source failed.
    Io(std::io::Error),
    /// The bytes did not decode as warts.
    Decode(WartsError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "io: {e}"),
            StreamError::Decode(e) => write!(f, "warts: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<WartsError> for StreamError {
    fn from(e: WartsError) -> Self {
        StreamError::Decode(e)
    }
}

impl<R: Read> WartsStreamReader<R> {
    /// Wraps a byte source (wrap files in a `BufReader`).
    pub fn new(source: R) -> Self {
        WartsStreamReader {
            source,
            addrs: AddrTableReader::new(),
            offset: 0,
            failed: false,
            metrics: None,
            lenient: false,
            elide_unsupported: false,
            buf: Vec::new(),
            buf_pos: 0,
            eof: false,
            skips: BTreeMap::new(),
            resync_bytes: 0,
            last_span: None,
        }
    }

    /// Tallies everything read into `metrics` (see [`StreamMetrics`]).
    pub fn with_metrics(mut self, metrics: StreamMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Survives corrupt input instead of aborting the stream, counting
    /// every skip under its [`SkipReason`]:
    ///
    /// * a record whose *body* fails to decode is skipped — the declared
    ///   header length keeps the reader aligned on the next boundary;
    /// * header-level corruption (bad magic, insane length, a body cut
    ///   short of its declared length) triggers *resynchronisation*: the
    ///   reader scans forward for the next plausible record header and
    ///   resumes there, counting one skip per corruption event and the
    ///   discarded bytes in `warts.resync_bytes`;
    /// * a stream ending mid-header or mid-body ends cleanly after a
    ///   final counted skip.
    ///
    /// Skips tally in [`StreamMetrics`] when attached and always in
    /// [`WartsStreamReader::skip_counts`]. Note a skipped trace/ping may
    /// have carried address-dictionary entries; later references to them
    /// then fail too (and are counted in turn).
    pub fn lenient(mut self) -> Self {
        self.lenient = true;
        self
    }

    /// Yields [`Record::Unsupported`] with an *empty* body instead of
    /// copying the bytes out of the stream buffer. The ingest paths use
    /// this: they only count unsupported records, so the one remaining
    /// per-record copy in the decoder disappears (`Vec::new()` does not
    /// allocate). Leave it off when bodies must be preserved (e.g. the
    /// `lpr dump` byte census).
    pub fn elide_unsupported_bodies(mut self) -> Self {
        self.elide_unsupported = true;
        self
    }

    /// Per-reason skip tallies so far (empty unless
    /// [`WartsStreamReader::lenient`]).
    pub fn skip_counts(&self) -> &BTreeMap<SkipReason, u64> {
        &self.skips
    }

    /// Total bytes consumed from the source so far (records plus any
    /// resynchronisation garbage).
    pub fn offset(&self) -> u64 {
        self.offset as u64
    }

    /// The wire span of the most recent record
    /// [`WartsStreamReader::next_record`] returned, or `None` before the
    /// first success. An index builder calls this after every
    /// `Ok(Some(_))`.
    pub fn last_record_span(&self) -> Option<RecordSpan> {
        self.last_span
    }

    /// The address dictionary accumulated so far, in table-id order
    /// (including entries added by records whose decode later failed —
    /// exactly the state a sequential lenient pass carries forward).
    pub fn addr_snapshot(&self) -> Vec<crate::addr::Addr> {
        self.addrs.snapshot()
    }

    /// Total records/runs skipped so far in lenient mode.
    pub fn skipped_total(&self) -> u64 {
        self.skips.values().sum()
    }

    /// Garbage bytes discarded while resynchronising.
    pub fn resync_bytes(&self) -> u64 {
        self.resync_bytes
    }

    fn buffered(&self) -> usize {
        self.buf.len() - self.buf_pos
    }

    /// Ensures at least `n` bytes are buffered, or as many as the
    /// source has before EOF.
    fn fill(&mut self, n: usize) -> Result<(), StreamError> {
        while self.buffered() < n && !self.eof {
            if self.buf_pos > 0 {
                self.buf.drain(..self.buf_pos);
                self.buf_pos = 0;
            }
            let old = self.buf.len();
            let want = (n - old).max(4096);
            self.buf.resize(old + want, 0);
            let got = match self.source.read(&mut self.buf[old..]) {
                Ok(g) => g,
                Err(e) => {
                    self.buf.truncate(old);
                    return Err(e.into());
                }
            };
            self.buf.truncate(old + got);
            if got == 0 {
                self.eof = true;
            }
        }
        Ok(())
    }

    /// Consumes `n` buffered bytes as (part of) a record.
    fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.buffered());
        self.buf_pos += n;
        self.offset += n;
    }

    /// Consumes `n` buffered bytes as resynchronisation garbage.
    fn discard(&mut self, n: usize) {
        self.consume(n);
        self.resync_bytes += n as u64;
        if let Some(m) = &self.metrics {
            m.resync_bytes.add(n as u64);
        }
    }

    fn skip(&mut self, reason: SkipReason) {
        *self.skips.entry(reason).or_default() += 1;
        if let Some(m) = &self.metrics {
            m.skip(reason);
        }
    }

    /// Scans forward to the next plausible record header (magic plus a
    /// sane declared length), discarding garbage. Stops at EOF with the
    /// un-frameable tail discarded. Always makes progress when invoked
    /// after at least one byte of the bad region was consumed.
    fn resync(&mut self) -> Result<(), StreamError> {
        loop {
            self.fill(8)?;
            let window = &self.buf[self.buf_pos..];
            if window.len() < 8 {
                let n = window.len();
                self.discard(n);
                return Ok(());
            }
            let magic = WARTS_MAGIC.to_be_bytes();
            let mut found = None;
            for i in 0..=window.len() - 8 {
                if window[i] == magic[0] && window[i + 1] == magic[1] {
                    let len = u32::from_be_bytes([
                        window[i + 4],
                        window[i + 5],
                        window[i + 6],
                        window[i + 7],
                    ]) as usize;
                    if len <= MAX_RECORD_LEN {
                        found = Some(i);
                        break;
                    }
                }
            }
            match found {
                Some(0) => return Ok(()),
                Some(i) => {
                    self.discard(i);
                    return Ok(());
                }
                None => {
                    // Keep the last 7 bytes: a header may straddle the
                    // window edge.
                    let n = window.len() - 7;
                    self.discard(n);
                    if self.eof {
                        let tail = self.buffered();
                        self.discard(tail);
                        return Ok(());
                    }
                }
            }
        }
    }

    /// Reads the next record; `Ok(None)` at a clean end of stream.
    pub fn next_record(&mut self) -> Result<Option<Record>, StreamError> {
        loop {
            if self.failed {
                return Ok(None);
            }
            // Header: 8 bytes, but EOF exactly at a record boundary is a
            // clean end.
            self.fill(8)?;
            let avail = self.buffered();
            if avail == 0 {
                return Ok(None);
            }
            if avail < 8 {
                if self.lenient {
                    self.skip(SkipReason::TruncatedHeader);
                    self.discard(avail);
                    return Ok(None);
                }
                self.failed = true;
                return Err(WartsError::Truncated { context: "record header" }.into());
            }
            let header = &self.buf[self.buf_pos..self.buf_pos + 8];
            let magic = u16::from_be_bytes([header[0], header[1]]);
            if magic != WARTS_MAGIC {
                if self.lenient {
                    self.skip(SkipReason::BadMagic);
                    self.discard(1);
                    self.resync()?;
                    continue;
                }
                self.failed = true;
                return Err(WartsError::BadMagic { offset: self.offset, found: magic }.into());
            }
            let record_type = u16::from_be_bytes([header[2], header[3]]);
            let len = u32::from_be_bytes([header[4], header[5], header[6], header[7]]) as usize;
            if len > MAX_RECORD_LEN {
                if self.lenient {
                    self.skip(SkipReason::InsaneLength);
                    self.discard(1);
                    self.resync()?;
                    continue;
                }
                self.failed = true;
                return Err(WartsError::Truncated { context: "record length sanity" }.into());
            }
            self.fill(8 + len)?;
            if self.buffered() < 8 + len {
                // The stream ends short of the declared body. In lenient
                // mode the "header" may be a corrupted length swallowing
                // real records, so step past it and rescan the tail.
                if self.lenient {
                    self.skip(SkipReason::TruncatedBody);
                    self.discard(1);
                    self.resync()?;
                    continue;
                }
                self.failed = true;
                return Err(WartsError::Truncated { context: "record body" }.into());
            }
            // Decode borrows the body straight out of the stream buffer
            // (no per-record copy); the bytes are consumed afterwards,
            // which both outcomes permit: success owns its fields,
            // failure leaves the reader positioned on the next header.
            let start = self.offset as u64;
            let result = decode_body(
                record_type,
                len,
                &self.buf[self.buf_pos + 8..self.buf_pos + 8 + len],
                &mut self.addrs,
                !self.elide_unsupported,
            );
            self.consume(8 + len);

            match result {
                Ok(record) => {
                    if let Some(m) = &self.metrics {
                        m.observe(8 + len, &record);
                    }
                    self.last_span = Some(RecordSpan {
                        offset: start,
                        body_len: len as u32,
                        record_type,
                    });
                    return Ok(Some(record));
                }
                Err(e) => {
                    if self.lenient {
                        // The body was fully consumed, so the reader is
                        // already positioned on the next header.
                        self.skip(SkipReason::of(&e));
                        continue;
                    }
                    self.failed = true;
                    return Err(e.into());
                }
            }
        }
    }
}

/// Decodes one record body, borrowed from the stream buffer. With
/// `keep_unsupported` an unsupported record's bytes are copied so they
/// can be preserved for inspection; without it the body stays empty and
/// nothing is copied at all.
fn decode_body(
    record_type: u16,
    len: usize,
    body: &[u8],
    addrs: &mut AddrTableReader,
    keep_unsupported: bool,
) -> Result<Record, WartsError> {
    let mut cur = Cursor::new(body);
    let record = match record_type {
        x if x == RecordType::List as u16 => Record::List(ListRecord::read(&mut cur)?),
        x if x == RecordType::CycleStart as u16 || x == RecordType::CycleDef as u16 => {
            Record::CycleStart(CycleRecord::read(&mut cur)?)
        }
        x if x == RecordType::CycleStop as u16 => {
            Record::CycleStop(CycleStopRecord::read(&mut cur)?)
        }
        x if x == RecordType::Trace as u16 => {
            Record::Trace(TraceRecord::read(&mut cur, addrs)?)
        }
        x if x == RecordType::Ping as u16 => {
            Record::Ping(PingRecord::read(&mut cur, addrs)?)
        }
        other => {
            let body = if keep_unsupported { body.to_vec() } else { Vec::new() };
            return Ok(Record::Unsupported { record_type: other, body });
        }
    };
    if !cur.is_empty() {
        return Err(WartsError::LengthMismatch {
            record_type,
            declared: len,
            consumed: cur.position(),
        });
    }
    Ok(record)
}

/// Decodes one record body against a caller-supplied address table —
/// the entry point for index-driven shard decoding, where the body is a
/// slice of a memory-mapped file and `addrs` is the file's full
/// dictionary preloaded via [`AddrTableReader::from_table`].
///
/// Semantics are identical to [`WartsStreamReader::next_record`]'s body
/// decode (length-mismatch included). Unsupported record bodies are
/// always elided here: range decoders count them, never re-emit them.
pub fn decode_record_body(
    record_type: u16,
    body: &[u8],
    addrs: &mut AddrTableReader,
) -> Result<Record, WartsError> {
    decode_body(record_type, body.len(), body, addrs, false)
}

impl<R: Read> Iterator for WartsStreamReader<R> {
    type Item = Result<Record, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::file::WartsWriter;
    use crate::trace::HopRecord;
    use std::net::Ipv4Addr;

    fn a(o: u8) -> Addr {
        Addr::V4(Ipv4Addr::new(10, 0, 0, o))
    }

    fn sample_bytes() -> Vec<u8> {
        let mut w = WartsWriter::new();
        let list = w.list(1, "stream");
        let cycle = w.cycle_start(list, 1, 0);
        let mut t = TraceRecord::new(a(1), a(9));
        t.hops = vec![HopRecord::reply(1, a(2), 100)];
        w.trace(&t).unwrap();
        w.trace(&t).unwrap(); // dictionary reference crosses records
        w.cycle_stop(cycle, 1);
        w.into_bytes()
    }

    /// A reader that returns one byte at a time (worst-case chunking).
    struct Trickle<'a>(&'a [u8]);

    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.0.is_empty() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    #[test]
    fn streaming_matches_in_memory() {
        let bytes = sample_bytes();
        let batch: Vec<Record> =
            crate::file::WartsReader::new(&bytes).collect::<Result<_, _>>().unwrap();
        let streamed: Vec<Record> = WartsStreamReader::new(bytes.as_slice())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn one_byte_chunks_are_fine() {
        let bytes = sample_bytes();
        let streamed: Vec<Record> = WartsStreamReader::new(Trickle(&bytes))
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed.len(), 5);
    }

    #[test]
    fn clean_eof_vs_truncation() {
        let bytes = sample_bytes();
        // Clean end.
        let mut r = WartsStreamReader::new(bytes.as_slice());
        while r.next_record().unwrap().is_some() {}
        // Truncated mid-record.
        let cut = &bytes[..bytes.len() - 3];
        let r = WartsStreamReader::new(cut);
        let res: Result<Vec<Record>, _> = r.collect();
        assert!(res.is_err());
        // Truncated mid-header.
        let cut = &bytes[..3];
        let mut r = WartsStreamReader::new(cut);
        assert!(matches!(r.next_record(), Err(StreamError::Decode(_))));
    }

    #[test]
    fn lenient_mode_skips_malformed_record_and_counts_it() {
        // A valid header declaring a 4-byte trace body that cannot
        // decode (truncated content), followed by a fully valid stream.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WARTS_MAGIC.to_be_bytes());
        bytes.extend_from_slice(&(RecordType::Trace as u16).to_be_bytes());
        bytes.extend_from_slice(&4u32.to_be_bytes());
        bytes.extend_from_slice(&[0xFF; 4]);
        bytes.extend_from_slice(&sample_bytes());

        // Strict mode aborts on the malformed body.
        let strict: Result<Vec<Record>, _> =
            WartsStreamReader::new(bytes.as_slice()).collect();
        assert!(strict.is_err());

        // Lenient mode counts the skip and keeps going.
        let registry = Registry::new();
        let metrics = StreamMetrics::from_registry(&registry);
        let records: Vec<Record> = WartsStreamReader::new(bytes.as_slice())
            .with_metrics(metrics.clone())
            .lenient()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(records.len(), 5, "all valid records still stream");
        assert_eq!(metrics.malformed.get(), 1);
        assert_eq!(metrics.records.get(), 5);
        assert_eq!(metrics.traces.get(), 2);
        assert_eq!(registry.counter("warts.malformed_records").get(), 1);
    }

    #[test]
    fn metrics_tally_records_bytes_and_unknown_extensions() {
        let mut w = WartsWriter::new();
        let list = w.list(1, "metrics");
        let cycle = w.cycle_start(list, 1, 0);
        let mut t = TraceRecord::new(a(1), a(9));
        let mut hop = HopRecord::reply(1, a(2), 100);
        // One MPLS object and one vendor-specific object: only the
        // latter is "unknown".
        hop.icmp_exts.push(crate::icmpext::IcmpExt {
            class: crate::icmpext::MPLS_EXT_CLASS,
            kind: crate::icmpext::MPLS_EXT_TYPE,
            data: vec![0, 1, 2, 3],
        });
        hop.icmp_exts.push(crate::icmpext::IcmpExt { class: 9, kind: 9, data: vec![1] });
        t.hops = vec![hop];
        w.trace(&t).unwrap();
        w.cycle_stop(cycle, 1);
        let bytes = w.into_bytes();

        let registry = Registry::new();
        let metrics = StreamMetrics::from_registry(&registry);
        let records: Vec<Record> = WartsStreamReader::new(bytes.as_slice())
            .with_metrics(metrics.clone())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(metrics.records.get(), records.len() as u64);
        assert_eq!(metrics.bytes.get(), bytes.len() as u64);
        assert_eq!(metrics.traces.get(), 1);
        assert_eq!(metrics.unknown_icmp_ext.get(), 1);
        assert_eq!(metrics.unsupported.get(), 0);
    }

    #[test]
    fn insane_length_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WARTS_MAGIC.to_be_bytes());
        bytes.extend_from_slice(&6u16.to_be_bytes());
        bytes.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut r = WartsStreamReader::new(bytes.as_slice());
        assert!(r.next_record().is_err());
    }

    /// Drains a lenient reader, returning the records it salvaged.
    fn drain_lenient(bytes: &[u8]) -> (Vec<Record>, BTreeMap<SkipReason, u64>, u64) {
        let mut r = WartsStreamReader::new(bytes).lenient();
        let mut records = Vec::new();
        while let Some(rec) = r.next_record().expect("lenient never errors on corrupt bytes") {
            records.push(rec);
        }
        (records, r.skip_counts().clone(), r.resync_bytes())
    }

    #[test]
    fn lenient_resyncs_over_leading_garbage() {
        let mut bytes = vec![0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03];
        bytes.extend_from_slice(&sample_bytes());
        let (records, skips, resynced) = drain_lenient(&bytes);
        assert_eq!(records.len(), 5, "every real record survives the garbage prefix");
        assert_eq!(skips[&SkipReason::BadMagic], 1, "one skip per garbage run");
        assert_eq!(resynced, 7);
    }

    #[test]
    fn lenient_resyncs_over_a_smashed_magic() {
        let mut bytes = sample_bytes();
        bytes[0] ^= 0xFF; // first record's magic
        let (records, skips, _) = drain_lenient(&bytes);
        // The first record (the list) is lost; resync lands on the next.
        assert_eq!(records.len(), 4);
        assert!(skips[&SkipReason::BadMagic] >= 1);
    }

    #[test]
    fn lenient_survives_insane_length_and_recovers_the_tail() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WARTS_MAGIC.to_be_bytes());
        bytes.extend_from_slice(&6u16.to_be_bytes());
        bytes.extend_from_slice(&(u32::MAX).to_be_bytes());
        bytes.extend_from_slice(&sample_bytes());
        let (records, skips, _) = drain_lenient(&bytes);
        assert_eq!(records.len(), 5, "records after the insane header still stream");
        assert_eq!(skips[&SkipReason::InsaneLength], 1);
    }

    #[test]
    fn lenient_ends_cleanly_on_truncated_tail() {
        let bytes = sample_bytes();
        // Cut mid-body of the last record.
        let cut = &bytes[..bytes.len() - 3];
        let (records, skips, _) = drain_lenient(cut);
        assert_eq!(records.len(), 4, "all but the cut record");
        assert_eq!(skips[&SkipReason::TruncatedBody], 1);
        // Cut mid-header.
        let (records, skips, _) = drain_lenient(&bytes[..3]);
        assert!(records.is_empty());
        assert_eq!(skips[&SkipReason::TruncatedHeader], 1);
    }

    #[test]
    fn lenient_recovers_records_swallowed_by_a_bad_length() {
        // Inflate the first record's declared length so it would swallow
        // the rest of the stream; resync must rescue the later records.
        let mut bytes = sample_bytes();
        let len = u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        bytes[4..8].copy_from_slice(&(len + 9999).to_be_bytes());
        let (records, skips, _) = drain_lenient(&bytes);
        assert!(records.len() >= 4, "records after the bad length stream again");
        assert!(skips[&SkipReason::TruncatedBody] >= 1);
    }

    #[test]
    fn record_spans_tile_the_stream_and_redecode_identically() {
        let bytes = sample_bytes();
        let mut r = WartsStreamReader::new(bytes.as_slice());
        assert_eq!(r.last_record_span(), None);
        let mut spans = Vec::new();
        let mut records = Vec::new();
        while let Some(rec) = r.next_record().unwrap() {
            spans.push(r.last_record_span().unwrap());
            records.push(rec);
        }
        // Spans tile the stream exactly: each starts where the previous
        // ended, and they cover every byte.
        let mut expect = 0u64;
        for s in &spans {
            assert_eq!(s.offset, expect);
            expect += s.wire_len();
        }
        assert_eq!(expect, bytes.len() as u64);
        assert_eq!(r.offset(), bytes.len() as u64);

        // Re-decoding each span's body against the full preloaded
        // dictionary reproduces the sequential records (the dictionary
        // references in the second trace resolve from the preload).
        let dict = r.addr_snapshot();
        let mut addrs = AddrTableReader::from_table(dict);
        for (s, rec) in spans.iter().zip(&records) {
            let body = &bytes[s.offset as usize + 8..(s.offset + s.wire_len()) as usize];
            let redecoded = decode_record_body(s.record_type, body, &mut addrs).unwrap();
            assert_eq!(&redecoded, rec);
        }
    }

    #[test]
    fn elided_unsupported_bodies_are_empty_but_counted() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WARTS_MAGIC.to_be_bytes());
        bytes.extend_from_slice(&0x00F0u16.to_be_bytes()); // unknown type
        bytes.extend_from_slice(&5u32.to_be_bytes());
        bytes.extend_from_slice(&[9; 5]);
        bytes.extend_from_slice(&sample_bytes());

        let registry = Registry::new();
        let metrics = StreamMetrics::from_registry(&registry);
        let kept: Vec<Record> = WartsStreamReader::new(bytes.as_slice())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(
            kept[0],
            Record::Unsupported { record_type: 0x00F0, body: vec![9; 5] },
            "default mode preserves the body"
        );
        let elided: Vec<Record> = WartsStreamReader::new(bytes.as_slice())
            .with_metrics(metrics.clone())
            .elide_unsupported_bodies()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(elided[0], Record::Unsupported { record_type: 0x00F0, body: Vec::new() });
        assert_eq!(elided.len(), kept.len());
        assert_eq!(metrics.unsupported.get(), 1, "still counted");
        assert_eq!(metrics.bytes.get(), bytes.len() as u64, "wire bytes still tallied");
    }

    #[test]
    fn skip_counts_reconcile_exactly_with_stream_metrics() {
        // A stream with three distinct corruption events: leading
        // garbage, a bit-flipped body, and a truncated tail.
        let mut bytes = vec![0xFFu8; 5];
        bytes.extend_from_slice(&WARTS_MAGIC.to_be_bytes());
        bytes.extend_from_slice(&(RecordType::Trace as u16).to_be_bytes());
        bytes.extend_from_slice(&4u32.to_be_bytes());
        bytes.extend_from_slice(&[0xFF; 4]); // undecodable trace body
        bytes.extend_from_slice(&sample_bytes());
        bytes.truncate(bytes.len() - 3);

        let registry = Registry::new();
        let metrics = StreamMetrics::from_registry(&registry);
        let mut r = WartsStreamReader::new(bytes.as_slice())
            .with_metrics(metrics.clone())
            .lenient();
        let mut decoded = 0u64;
        while r.next_record().unwrap().is_some() {
            decoded += 1;
        }

        // Reader-side and registry-side tallies agree per reason…
        let mut total = 0u64;
        for reason in SkipReason::ALL {
            let reader_side = r.skip_counts().get(&reason).copied().unwrap_or(0);
            assert_eq!(
                metrics.skips[reason as usize].get(),
                reader_side,
                "{} counter",
                reason.name()
            );
            assert_eq!(
                registry.counter(reason.counter_name()).get(),
                reader_side,
                "{} registry row",
                reason.name()
            );
            total += reader_side;
        }
        // …and the totals reconcile: malformed = Σ per-reason, records
        // decoded + skipped covers every corruption event.
        assert_eq!(metrics.malformed.get(), total);
        assert_eq!(r.skipped_total(), total);
        assert!(total >= 3, "garbage + bad body + truncated tail all counted");
        assert_eq!(metrics.records.get(), decoded);
        assert_eq!(registry.counter("warts.resync_bytes").get(), r.resync_bytes());
        assert_eq!(decoded, 4, "the valid records still stream");
    }
}
