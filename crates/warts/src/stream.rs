//! Incremental reading from any [`std::io::Read`].
//!
//! Ark cycle dumps run to gigabytes; [`WartsStreamReader`] reads one
//! record at a time from a buffered source instead of slurping the file
//! — pairing naturally with `lpr_core::stream::CycleAccumulator` for a
//! bounded-memory end-to-end pipeline:
//!
//! ```no_run
//! use warts::{Record, WartsStreamReader};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let file = std::fs::File::open("cycle.warts")?;
//! let mut reader = WartsStreamReader::new(std::io::BufReader::new(file));
//! while let Some(record) = reader.next_record()? {
//!     if let Record::Trace(t) = record {
//!         // feed a CycleAccumulator…
//!         let _ = t;
//!     }
//! }
//! # Ok(())
//! # }
//! ```

use crate::addr::AddrTableReader;
use crate::buf::Cursor;
use crate::cycle::{CycleRecord, CycleStopRecord};
use crate::error::WartsError;
use crate::file::{Record, RecordType, WARTS_MAGIC};
use crate::list::ListRecord;
use crate::ping::PingRecord;
use crate::trace::TraceRecord;
use std::io::Read;

/// Largest record body this reader will buffer (64 MiB — far above any
/// real scamper record; a larger length indicates corruption).
pub const MAX_RECORD_LEN: usize = 64 << 20;

/// A record-at-a-time reader over any byte source.
pub struct WartsStreamReader<R: Read> {
    source: R,
    addrs: AddrTableReader,
    offset: usize,
    failed: bool,
}

/// Errors from streaming reads: IO or decode.
#[derive(Debug)]
pub enum StreamError {
    /// The underlying source failed.
    Io(std::io::Error),
    /// The bytes did not decode as warts.
    Decode(WartsError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "io: {e}"),
            StreamError::Decode(e) => write!(f, "warts: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<WartsError> for StreamError {
    fn from(e: WartsError) -> Self {
        StreamError::Decode(e)
    }
}

impl<R: Read> WartsStreamReader<R> {
    /// Wraps a byte source (wrap files in a `BufReader`).
    pub fn new(source: R) -> Self {
        WartsStreamReader { source, addrs: AddrTableReader::new(), offset: 0, failed: false }
    }

    /// Reads the next record; `Ok(None)` at a clean end of stream.
    pub fn next_record(&mut self) -> Result<Option<Record>, StreamError> {
        if self.failed {
            return Ok(None);
        }
        // Header: 8 bytes, but EOF exactly at a record boundary is a
        // clean end.
        let mut header = [0u8; 8];
        let mut got = 0usize;
        while got < 8 {
            let n = self.source.read(&mut header[got..])?;
            if n == 0 {
                if got == 0 {
                    return Ok(None);
                }
                self.failed = true;
                return Err(WartsError::Truncated { context: "record header" }.into());
            }
            got += n;
        }
        let magic = u16::from_be_bytes([header[0], header[1]]);
        if magic != WARTS_MAGIC {
            self.failed = true;
            return Err(WartsError::BadMagic { offset: self.offset, found: magic }.into());
        }
        let record_type = u16::from_be_bytes([header[2], header[3]]);
        let len = u32::from_be_bytes([header[4], header[5], header[6], header[7]]) as usize;
        if len > MAX_RECORD_LEN {
            self.failed = true;
            return Err(WartsError::Truncated { context: "record length sanity" }.into());
        }
        let mut body = vec![0u8; len];
        self.source.read_exact(&mut body).inspect_err(|_| {
            self.failed = true;
        })?;
        self.offset += 8 + len;

        let mut cur = Cursor::new(&body);
        let record = match record_type {
            x if x == RecordType::List as u16 => Record::List(ListRecord::read(&mut cur)?),
            x if x == RecordType::CycleStart as u16 || x == RecordType::CycleDef as u16 => {
                Record::CycleStart(CycleRecord::read(&mut cur)?)
            }
            x if x == RecordType::CycleStop as u16 => {
                Record::CycleStop(CycleStopRecord::read(&mut cur)?)
            }
            x if x == RecordType::Trace as u16 => {
                Record::Trace(TraceRecord::read(&mut cur, &mut self.addrs)?)
            }
            x if x == RecordType::Ping as u16 => {
                Record::Ping(PingRecord::read(&mut cur, &mut self.addrs)?)
            }
            other => return Ok(Some(Record::Unsupported { record_type: other, body })),
        };
        if !cur.is_empty() {
            self.failed = true;
            return Err(WartsError::LengthMismatch {
                record_type,
                declared: len,
                consumed: cur.position(),
            }
            .into());
        }
        Ok(Some(record))
    }
}

impl<R: Read> Iterator for WartsStreamReader<R> {
    type Item = Result<Record, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::file::WartsWriter;
    use crate::trace::HopRecord;
    use std::net::Ipv4Addr;

    fn a(o: u8) -> Addr {
        Addr::V4(Ipv4Addr::new(10, 0, 0, o))
    }

    fn sample_bytes() -> Vec<u8> {
        let mut w = WartsWriter::new();
        let list = w.list(1, "stream");
        let cycle = w.cycle_start(list, 1, 0);
        let mut t = TraceRecord::new(a(1), a(9));
        t.hops = vec![HopRecord::reply(1, a(2), 100)];
        w.trace(&t).unwrap();
        w.trace(&t).unwrap(); // dictionary reference crosses records
        w.cycle_stop(cycle, 1);
        w.into_bytes()
    }

    /// A reader that returns one byte at a time (worst-case chunking).
    struct Trickle<'a>(&'a [u8]);

    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.0.is_empty() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    #[test]
    fn streaming_matches_in_memory() {
        let bytes = sample_bytes();
        let batch: Vec<Record> =
            crate::file::WartsReader::new(&bytes).collect::<Result<_, _>>().unwrap();
        let streamed: Vec<Record> = WartsStreamReader::new(bytes.as_slice())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn one_byte_chunks_are_fine() {
        let bytes = sample_bytes();
        let streamed: Vec<Record> = WartsStreamReader::new(Trickle(&bytes))
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed.len(), 5);
    }

    #[test]
    fn clean_eof_vs_truncation() {
        let bytes = sample_bytes();
        // Clean end.
        let mut r = WartsStreamReader::new(bytes.as_slice());
        while r.next_record().unwrap().is_some() {}
        // Truncated mid-record.
        let cut = &bytes[..bytes.len() - 3];
        let r = WartsStreamReader::new(cut);
        let res: Result<Vec<Record>, _> = r.collect();
        assert!(res.is_err());
        // Truncated mid-header.
        let cut = &bytes[..3];
        let mut r = WartsStreamReader::new(cut);
        assert!(matches!(r.next_record(), Err(StreamError::Decode(_))));
    }

    #[test]
    fn insane_length_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WARTS_MAGIC.to_be_bytes());
        bytes.extend_from_slice(&6u16.to_be_bytes());
        bytes.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut r = WartsStreamReader::new(bytes.as_slice());
        assert!(r.next_record().is_err());
    }
}
