//! ICMP extension structures (RFC 4884) and the MPLS label-stack
//! extension object (RFC 4950).
//!
//! When an LSR's MPLS TTL expires it may quote the label stack of the
//! offending packet inside the ICMP `time-exceeded` message. scamper
//! stores the decoded extension objects on the hop record; the warts
//! encoding of the hop parameter is:
//!
//! ```text
//! u16 total-length
//!   repeat:
//!     u16 data-length ‖ u8 class ‖ u8 type ‖ data
//! ```
//!
//! For the MPLS object (class 1, type 1) the data is a sequence of
//! 4-byte label-stack entries, outermost first.

use crate::buf::Cursor;
use crate::error::WartsError;
use bytes::{BufMut, BytesMut};
use lpr_core::label::{LabelStack, Lse};

/// RFC 4950 MPLS label stack object class.
pub const MPLS_EXT_CLASS: u8 = 1;
/// RFC 4950 MPLS label stack object type.
pub const MPLS_EXT_TYPE: u8 = 1;

/// One decoded ICMP extension object.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IcmpExt {
    /// Extension class number.
    pub class: u8,
    /// Extension type number.
    pub kind: u8,
    /// Raw object payload.
    pub data: Vec<u8>,
}

impl IcmpExt {
    /// Builds the RFC 4950 object carrying an MPLS label stack.
    pub fn mpls(stack: &LabelStack) -> Self {
        let mut data = Vec::with_capacity(stack.depth() * 4);
        for lse in stack.entries() {
            data.extend_from_slice(&lse.to_u32().to_be_bytes());
        }
        IcmpExt { class: MPLS_EXT_CLASS, kind: MPLS_EXT_TYPE, data }
    }

    /// Whether this object is an RFC 4950 MPLS label stack.
    pub fn is_mpls(&self) -> bool {
        self.class == MPLS_EXT_CLASS && self.kind == MPLS_EXT_TYPE
    }

    /// Decodes the MPLS label stack carried by this object, if it is
    /// one. Returns an error when the payload length is not a multiple
    /// of four.
    pub fn mpls_stack(&self) -> Result<Option<LabelStack>, WartsError> {
        if !self.is_mpls() {
            return Ok(None);
        }
        if !self.data.len().is_multiple_of(4) {
            return Err(WartsError::BadIcmpExt { reason: "MPLS data not a multiple of 4 bytes" });
        }
        let stack = self
            .data
            .chunks_exact(4)
            .map(|c| Lse::from_u32(u32::from_be_bytes([c[0], c[1], c[2], c[3]])))
            .collect();
        Ok(Some(stack))
    }
}

/// Encodes a list of extension objects as the warts hop parameter.
pub fn write_exts(buf: &mut BytesMut, exts: &[IcmpExt]) {
    let total: usize = exts.iter().map(|e| 4 + e.data.len()).sum();
    buf.put_u16(total as u16);
    for e in exts {
        buf.put_u16(e.data.len() as u16);
        buf.put_u8(e.class);
        buf.put_u8(e.kind);
        buf.put_slice(&e.data);
    }
}

/// Decodes the warts hop parameter into extension objects.
pub fn read_exts(cur: &mut Cursor<'_>) -> Result<Vec<IcmpExt>, WartsError> {
    let total = cur.u16("icmpext total length")? as usize;
    let block = cur.bytes(total, "icmpext block")?;
    let mut inner = Cursor::new(block);
    let mut exts = Vec::new();
    while !inner.is_empty() {
        let dl = inner.u16("icmpext data length")? as usize;
        let class = inner.u8("icmpext class")?;
        let kind = inner.u8("icmpext type")?;
        let data = inner.bytes(dl, "icmpext data")?.to_vec();
        exts.push(IcmpExt { class, kind, data });
    }
    Ok(exts)
}

/// Convenience: the first MPLS label stack found among extension
/// objects, if any.
pub fn mpls_stack_of(exts: &[IcmpExt]) -> Result<Option<LabelStack>, WartsError> {
    for e in exts {
        if let Some(stack) = e.mpls_stack()? {
            return Ok(Some(stack));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpr_core::label::Label;

    #[test]
    fn mpls_object_roundtrip() {
        let stack = LabelStack::from_entries(&[
            Lse::new(Label::new(300_000), 2, false, 250),
            Lse::new(Label::new(17), 0, true, 250),
        ]);
        let ext = IcmpExt::mpls(&stack);
        assert!(ext.is_mpls());
        assert_eq!(ext.data.len(), 8);
        assert_eq!(ext.mpls_stack().unwrap().unwrap(), stack);
    }

    #[test]
    fn non_mpls_object_yields_none() {
        let ext = IcmpExt { class: 2, kind: 1, data: vec![1, 2, 3] };
        assert_eq!(ext.mpls_stack().unwrap(), None);
    }

    #[test]
    fn bad_mpls_length() {
        let ext = IcmpExt { class: 1, kind: 1, data: vec![1, 2, 3] };
        assert!(ext.mpls_stack().is_err());
    }

    #[test]
    fn wire_roundtrip_multiple_objects() {
        let stack = LabelStack::from_entries(&[Lse::transit(42, 255)]);
        let exts = vec![
            IcmpExt::mpls(&stack),
            IcmpExt { class: 3, kind: 7, data: vec![0xAA, 0xBB] },
        ];
        let mut buf = BytesMut::new();
        write_exts(&mut buf, &exts);
        let mut cur = Cursor::new(&buf);
        let back = read_exts(&mut cur).unwrap();
        assert_eq!(back, exts);
        assert!(cur.is_empty());
        assert_eq!(mpls_stack_of(&back).unwrap().unwrap(), stack);
    }

    #[test]
    fn truncated_block_is_an_error() {
        let stack = LabelStack::from_entries(&[Lse::transit(42, 255)]);
        let mut buf = BytesMut::new();
        write_exts(&mut buf, &[IcmpExt::mpls(&stack)]);
        let cut = &buf[..buf.len() - 1];
        assert!(read_exts(&mut Cursor::new(cut)).is_err());
    }

    #[test]
    fn empty_ext_list() {
        let mut buf = BytesMut::new();
        write_exts(&mut buf, &[]);
        let mut cur = Cursor::new(&buf);
        assert!(read_exts(&mut cur).unwrap().is_empty());
    }
}
