//! scamper-style text rendering of warts records.
//!
//! Mirrors the output of `sc_warts2text` / the NANOG traceroute patch
//! the paper cites (§2.3): one line per hop, RTT in milliseconds, and
//! the RFC 4950 label stack rendered as `MPLS Label <n> TTL=<ttl>`
//! annotations under the hop that quoted them — the exact rendering
//! operators read when the extension "is displayed by modified versions
//! of traceroute".
//!
//! Rendering is one-way (diagnostic); the binary format remains the
//! interchange representation.

use crate::icmpext::mpls_stack_of;
use crate::ping::PingRecord;
use crate::trace::{StopReason, TraceRecord};
use std::fmt::Write as _;

/// Renders one traceroute record the way `sc_warts2text` would.
pub fn trace_to_text(t: &TraceRecord) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "traceroute from {} to {}", fmt_addr(&t.src), fmt_addr(&t.dst));
    let mut expected = t.first_hop.unwrap_or(1);
    for hop in &t.hops {
        while expected < hop.probe_ttl {
            let _ = writeln!(out, "{:>2}  *", expected);
            expected += 1;
        }
        expected = hop.probe_ttl.saturating_add(1);
        let rtt_ms = hop.rtt_us as f64 / 1000.0;
        let _ = writeln!(out, "{:>2}  {}  {:.3} ms", hop.probe_ttl, fmt_addr(&hop.addr), rtt_ms);
        if let Ok(Some(stack)) = mpls_stack_of(&hop.icmp_exts) {
            for lse in stack.entries() {
                let _ = writeln!(
                    out,
                    "     MPLS Label {} TC={} S={} TTL={}",
                    lse.label,
                    lse.tc,
                    lse.bottom as u8,
                    lse.ttl
                );
            }
        }
    }
    if t.stop_reason == StopReason::GapLimit {
        let _ = writeln!(out, "{:>2}  *", expected);
    }
    out
}

/// Renders one ping record.
pub fn ping_to_text(p: &PingRecord) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ping {} to {}: {} probes",
        fmt_addr(&p.src),
        fmt_addr(&p.dst),
        p.ping_sent.or(p.probe_count).unwrap_or(0)
    );
    for r in &p.replies {
        let _ = writeln!(
            out,
            "  reply from {} seq={} time={:.3} ms",
            fmt_addr(&r.addr),
            r.probe_id.unwrap_or(0),
            r.rtt_us as f64 / 1000.0
        );
    }
    out
}

fn fmt_addr(a: &crate::addr::Addr) -> String {
    match a {
        crate::addr::Addr::V4(v) => v.to_string(),
        crate::addr::Addr::V6(v) => v.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::icmpext::IcmpExt;
    use crate::ping::PingReply;
    use crate::trace::HopRecord;
    use lpr_core::label::{LabelStack, Lse};
    use std::net::Ipv4Addr;

    fn a(o: u8) -> Addr {
        Addr::V4(Ipv4Addr::new(10, 0, 0, o))
    }

    #[test]
    fn trace_text_shows_hops_and_labels() {
        let mut t = TraceRecord::new(a(1), a(9));
        t.stop_reason = StopReason::Completed;
        let mut h1 = HopRecord::reply(1, a(2), 1500);
        h1.icmp_exts = vec![IcmpExt::mpls(&LabelStack::from_entries(&[
            Lse::new(lpr_core::label::Label::new(300_000), 0, false, 254),
            Lse::transit(17, 254),
        ]))];
        let h2 = HopRecord::reply(3, a(9), 4500); // TTL 2 missing
        t.hops = vec![h1, h2];

        let text = trace_to_text(&t);
        assert!(text.contains("traceroute from 10.0.0.1 to 10.0.0.9"), "{text}");
        assert!(text.contains(" 1  10.0.0.2  1.500 ms"), "{text}");
        assert!(text.contains("MPLS Label 300000 TC=0 S=0 TTL=254"), "{text}");
        assert!(text.contains("MPLS Label 17 TC=0 S=1 TTL=254"), "{text}");
        assert!(text.contains(" 2  *"), "gap must render as anonymous: {text}");
        assert!(text.contains(" 3  10.0.0.9"), "{text}");
    }

    #[test]
    fn unterminated_trace_ends_with_star() {
        let mut t = TraceRecord::new(a(1), a(9));
        t.stop_reason = StopReason::GapLimit;
        t.hops = vec![HopRecord::reply(1, a(2), 100)];
        let text = trace_to_text(&t);
        assert!(text.trim_end().ends_with('*'), "{text}");
    }

    #[test]
    fn ping_text() {
        let mut p = PingRecord::new(a(1), a(9));
        p.ping_sent = Some(2);
        p.replies = vec![PingReply::echo(a(9), 2500)];
        let text = ping_to_text(&p);
        assert!(text.contains("ping 10.0.0.1 to 10.0.0.9: 2 probes"), "{text}");
        assert!(text.contains("reply from 10.0.0.9 seq=0 time=2.500 ms"), "{text}");
    }
}
