//! Bounded big-endian cursor primitives.
//!
//! Everything in warts is big-endian. [`Cursor`] wraps a byte slice and
//! returns [`WartsError::Truncated`] instead of panicking when the input
//! runs out; [`put_*`](put_u8) helpers append to a `BytesMut`.

use crate::error::WartsError;
use bytes::{BufMut, BytesMut};

/// A bounded reading cursor over a byte slice.
#[derive(Clone, Debug)]
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wraps a slice.
    pub fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    /// Current offset from the start of the slice.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, WartsError> {
        if self.remaining() < 1 {
            return Err(WartsError::Truncated { context });
        }
        let v = self.data[self.pos];
        self.pos += 1;
        Ok(v)
    }

    /// Reads a big-endian u16.
    pub fn u16(&mut self, context: &'static str) -> Result<u16, WartsError> {
        let b = self.bytes(2, context)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian u32.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, WartsError> {
        let b = self.bytes(4, context)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WartsError> {
        if self.remaining() < n {
            return Err(WartsError::Truncated { context });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a NUL-terminated string (warts string parameter).
    pub fn cstring(&mut self) -> Result<String, WartsError> {
        let rest = &self.data[self.pos..];
        let nul = rest
            .iter()
            .position(|&b| b == 0)
            .ok_or(WartsError::UnterminatedString)?;
        let s = String::from_utf8_lossy(&rest[..nul]).into_owned();
        self.pos += nul + 1;
        Ok(s)
    }

    /// Reads a warts timeval: seconds and microseconds, both u32.
    pub fn timeval(&mut self, context: &'static str) -> Result<(u32, u32), WartsError> {
        Ok((self.u32(context)?, self.u32(context)?))
    }
}

/// Appends one byte.
pub fn put_u8(buf: &mut BytesMut, v: u8) {
    buf.put_u8(v);
}

/// Appends a big-endian u16.
pub fn put_u16(buf: &mut BytesMut, v: u16) {
    buf.put_u16(v);
}

/// Appends a big-endian u32.
pub fn put_u32(buf: &mut BytesMut, v: u32) {
    buf.put_u32(v);
}

/// Appends a NUL-terminated string.
pub fn put_cstring(buf: &mut BytesMut, s: &str) {
    buf.put_slice(s.as_bytes());
    buf.put_u8(0);
}

/// Appends a warts timeval (seconds, microseconds).
pub fn put_timeval(buf: &mut BytesMut, sec: u32, usec: u32) {
    buf.put_u32(sec);
    buf.put_u32(usec);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut b = BytesMut::new();
        put_u8(&mut b, 0xAB);
        put_u16(&mut b, 0x1234);
        put_u32(&mut b, 0xDEADBEEF);
        let mut c = Cursor::new(&b);
        assert_eq!(c.u8("t").unwrap(), 0xAB);
        assert_eq!(c.u16("t").unwrap(), 0x1234);
        assert_eq!(c.u32("t").unwrap(), 0xDEADBEEF);
        assert!(c.is_empty());
    }

    #[test]
    fn truncation_is_an_error() {
        let data = [0x12];
        let mut c = Cursor::new(&data);
        assert_eq!(c.u16("field"), Err(WartsError::Truncated { context: "field" }));
        // Failed read must not advance.
        assert_eq!(c.position(), 0);
        assert_eq!(c.u8("field").unwrap(), 0x12);
    }

    #[test]
    fn cstring_roundtrip() {
        let mut b = BytesMut::new();
        put_cstring(&mut b, "ark.caida.org");
        put_u8(&mut b, 7);
        let mut c = Cursor::new(&b);
        assert_eq!(c.cstring().unwrap(), "ark.caida.org");
        assert_eq!(c.u8("tail").unwrap(), 7);
    }

    #[test]
    fn unterminated_string() {
        let data = b"abc";
        let mut c = Cursor::new(data);
        assert_eq!(c.cstring(), Err(WartsError::UnterminatedString));
    }

    #[test]
    fn timeval_roundtrip() {
        let mut b = BytesMut::new();
        put_timeval(&mut b, 1_400_000_000, 123_456);
        let mut c = Cursor::new(&b);
        assert_eq!(c.timeval("tv").unwrap(), (1_400_000_000, 123_456));
    }
}
