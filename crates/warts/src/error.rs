//! Typed errors for warts decoding and encoding.

use std::fmt;

/// Everything that can go wrong while reading or writing warts data.
///
/// The reader never panics on malformed input: every structural problem
/// maps to one of these variants, with enough context to locate the
/// offending byte.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WartsError {
    /// The 16-bit magic at a record boundary was not `0x1205`.
    BadMagic {
        /// Byte offset of the record header in the input.
        offset: usize,
        /// The value found instead.
        found: u16,
    },
    /// Input ended in the middle of a structure.
    Truncated {
        /// What was being decoded.
        context: &'static str,
    },
    /// A record body was shorter or longer than its header declared.
    LengthMismatch {
        /// Record type being decoded.
        record_type: u16,
        /// Declared body length.
        declared: usize,
        /// Bytes actually consumed.
        consumed: usize,
    },
    /// An address reference pointed outside the address table.
    UnknownAddrId {
        /// The dangling id.
        id: u32,
    },
    /// An embedded address had an unsupported type code.
    BadAddrType {
        /// The type code found.
        type_code: u8,
        /// Declared address byte length.
        len: u8,
    },
    /// A flag-encoded parameter block overran its declared length.
    ParamOverrun {
        /// What was being decoded.
        context: &'static str,
    },
    /// A string parameter was not NUL-terminated within the record.
    UnterminatedString,
    /// An ICMP extension structure was inconsistent.
    BadIcmpExt {
        /// Explanation.
        reason: &'static str,
    },
    /// The record is structurally valid but uses a feature this
    /// implementation does not support (e.g. a deprecated global
    /// address id).
    Unsupported {
        /// What feature.
        feature: &'static str,
    },
}

impl fmt::Display for WartsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WartsError::BadMagic { offset, found } => {
                write!(f, "bad warts magic {found:#06x} at byte {offset}")
            }
            WartsError::Truncated { context } => write!(f, "truncated input while reading {context}"),
            WartsError::LengthMismatch { record_type, declared, consumed } => write!(
                f,
                "record type {record_type:#04x}: header declares {declared} bytes, body used {consumed}"
            ),
            WartsError::UnknownAddrId { id } => write!(f, "reference to unknown address id {id}"),
            WartsError::BadAddrType { type_code, len } => {
                write!(f, "unsupported address type {type_code} (length {len})")
            }
            WartsError::ParamOverrun { context } => {
                write!(f, "parameter block overrun while reading {context}")
            }
            WartsError::UnterminatedString => write!(f, "unterminated string parameter"),
            WartsError::BadIcmpExt { reason } => write!(f, "bad ICMP extension: {reason}"),
            WartsError::Unsupported { feature } => write!(f, "unsupported warts feature: {feature}"),
        }
    }
}

impl std::error::Error for WartsError {}
