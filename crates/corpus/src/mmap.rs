//! Read-only memory mapping with a copying fallback.
//!
//! The one `unsafe` island of the workspace: a direct `mmap`/`munmap`
//! FFI (the offline shim policy rules out the `libc`/`memmap2` crates).
//! The mapping is `PROT_READ` + `MAP_PRIVATE` over an immutable input
//! file, so handing out `&[u8]` for the mapping's lifetime is sound in
//! the same sense `memmap2` is: the kernel owns the pages, nothing in
//! this process writes them, and the pointer lives exactly as long as
//! the owning [`MappedFile`]. If the file is truncated concurrently by
//! an outside process, reads may fault — corpora are treated as
//! immutable once written, as with any mmap-based reader.
//!
//! When the map cannot be established (exotic filesystem, non-unix
//! target), [`MappedFile::open`] silently falls back to `fs::read`;
//! callers can observe which path was taken via
//! [`MappedFile::is_mapped`] but never need to care.

use std::io;
use std::path::Path;

/// A corpus file's bytes: memory-mapped when possible, owned otherwise.
pub struct MappedFile {
    inner: Inner,
}

enum Inner {
    #[cfg(unix)]
    Mapped(sys::Mapping),
    Owned(Vec<u8>),
}

impl MappedFile {
    /// Opens `path` read-only, preferring a private read-only map.
    /// Empty files yield an empty owned buffer (zero-length `mmap` is
    /// an error by spec).
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            return Ok(MappedFile { inner: Inner::Owned(Vec::new()) });
        }
        #[cfg(unix)]
        if let Some(mapping) = sys::Mapping::map(&file, len as usize) {
            return Ok(MappedFile { inner: Inner::Mapped(mapping) });
        }
        Ok(MappedFile { inner: Inner::Owned(std::fs::read(path)?) })
    }

    /// The file's bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped(m) => m.bytes(),
            Inner::Owned(v) => v,
        }
    }

    /// Whether the bytes come from an actual memory map (false on the
    /// read fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped(_) => true,
            Inner::Owned(_) => false,
        }
    }

    /// File length in bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// True for a zero-length file.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use std::ffi::{c_int, c_long, c_void};
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: c_long,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }

    /// An established read-only private mapping.
    pub(super) struct Mapping {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ/MAP_PRIVATE over an immutable
    // file and this process never writes or remaps it; sharing the
    // read-only view across threads is as sound as sharing a `&[u8]`.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Maps `len` bytes of `file`; `None` when the kernel refuses
        /// (callers fall back to reading).
        pub(super) fn map(file: &std::fs::File, len: usize) -> Option<Self> {
            let map_failed = usize::MAX as *mut c_void;
            // SAFETY: arguments follow the mmap contract (NULL hint,
            // non-zero length, valid open fd, zero offset); the result
            // is checked against MAP_FAILED before use.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == map_failed || ptr.is_null() {
                return None;
            }
            Some(Mapping { ptr, len })
        }

        pub(super) fn bytes(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly
            // `len` bytes, valid until Drop; the returned slice borrows
            // `self`, so it cannot outlive the mapping.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` describe the exact region mapped in
            // `map`, unmapped exactly once here.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lpr-mmap-{}-{}", name, std::process::id()))
    }

    #[test]
    fn maps_file_contents_exactly() {
        let path = tmp("contents");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).unwrap();
        let map = MappedFile::open(&path).unwrap();
        assert_eq!(map.bytes(), payload.as_slice());
        assert_eq!(map.len(), payload.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_empty_slice() {
        let path = tmp("empty");
        std::fs::write(&path, b"").unwrap();
        let map = MappedFile::open(&path).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_mapped(), "zero-length files use the owned path");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(MappedFile::open(&tmp("missing-never-written")).is_err());
    }

    #[test]
    fn mapping_is_shareable_across_threads() {
        let path = tmp("threads");
        std::fs::write(&path, vec![7u8; 4096]).unwrap();
        let map = MappedFile::open(&path).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| assert!(map.bytes().iter().all(|&b| b == 7)));
            }
        });
        std::fs::remove_file(&path).ok();
    }
}
