//! Multi-file corpus writer for simulated cycles.
//!
//! Real Ark cycles arrive as many warts files (one per monitor/day);
//! the netsim scenario generator produces one flat trace list. This
//! writer splits that list into `n_files` contiguous chunks and writes
//! each as a **self-contained** warts file — its own list record,
//! cycle start/stop and address dictionary — so any subset of files
//! decodes independently. Reading the files back in order yields the
//! traces in their original order, which is what keeps the out-of-core
//! pipeline byte-identical to the in-memory one.

use lpr_core::trace::Trace;
use std::io;
use std::path::{Path, PathBuf};
use warts::{trace_to_record, WartsWriter};

/// Writes `traces` as `n_files` warts files under `dir`, named
/// `<stem>.NNN.warts`; returns the paths in cycle order. `n_files` is
/// clamped to at least 1; trailing files may be one trace shorter when
/// the split is uneven.
pub fn write_corpus_files(
    dir: &Path,
    stem: &str,
    traces: &[Trace],
    n_files: usize,
) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let n_files = n_files.max(1);
    let per_file = traces.len().div_ceil(n_files).max(1);
    let mut paths = Vec::new();
    for (i, chunk) in traces.chunks(per_file).enumerate() {
        let path = dir.join(format!("{stem}.{i:03}.warts"));
        let mut writer = WartsWriter::new();
        let list = writer.list(1, stem);
        let cycle = writer.cycle_start(list, 1, 1_400_000_000);
        for trace in chunk {
            writer
                .trace(&trace_to_record(trace, 1, 1))
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        }
        writer.cycle_stop(cycle, 1_400_000_600);
        std::fs::write(&path, writer.into_bytes())?;
        paths.push(path);
    }
    // An empty cycle still produces one (traceless) file so that a
    // corpus open always has something to map.
    if paths.is_empty() {
        let path = dir.join(format!("{stem}.000.warts"));
        let mut writer = WartsWriter::new();
        let list = writer.list(1, stem);
        let cycle = writer.cycle_start(list, 1, 1_400_000_000);
        writer.cycle_stop(cycle, 1_400_000_600);
        std::fs::write(&path, writer.into_bytes())?;
        paths.push(path);
    }
    Ok(paths)
}
