//! The per-file record index (`.lpridx`).
//!
//! One sequential **lenient** scan of a warts file yields everything a
//! sharded re-decode needs:
//!
//! - the [`RecordSpan`] (offset, body length, type) of every record
//!   that decoded successfully — range decoders slice bodies straight
//!   out of the mapping, no copies;
//! - the file's complete address dictionary in table-id order — a
//!   range decoder preloading it resolves every reference id exactly
//!   as the sequential pass did (embed-form occurrences re-append
//!   harmless duplicates past the preload);
//! - the scan's skip tallies and resync byte count, so the indexed
//!   path reports the *same* [`SkipReason`] accounting as a sequential
//!   lenient decode — equal by construction, not by re-measurement.
//!
//! The index is cached next to its file as `<name>.lpridx`, guarded by
//! a sampled fingerprint (length + first/last 4 KiB), and rebuilt when
//! stale or unreadable. Cache writes are best-effort: a read-only
//! corpus directory costs a rebuild per open, never an error.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use warts::{Addr, Record, RecordSpan, SkipReason, WartsStreamReader};

/// Magic prefix of a serialized index.
pub const INDEX_MAGIC: [u8; 4] = *b"LPRX";
/// Serialization version; bump on any layout change.
pub const INDEX_VERSION: u16 = 1;
/// Cache file extension (full name: `<file name>.lpridx`).
pub const INDEX_EXT: &str = "lpridx";

/// Suffix appended to [`INDEX_EXT`] for in-flight cache writes
/// (`<file>.lpridx.tmp`).
pub const INDEX_TMP_SUFFIX: &str = "tmp";

/// How many bytes of each end of the file the staleness fingerprint
/// samples.
const FINGERPRINT_SAMPLE: usize = 4096;

/// The decoded-record index of one warts file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordIndex {
    /// Length of the indexed file, bytes.
    pub file_len: u64,
    /// Sampled content fingerprint guarding cache staleness.
    pub fingerprint: u64,
    /// Spans of successfully decoded records, in stream order.
    pub records: Vec<RecordSpan>,
    /// The file's full address dictionary, in table-id order.
    pub addr_table: Vec<Addr>,
    /// Lenient-scan skip tallies, in [`SkipReason::ALL`] order.
    pub skip_counts: [u64; SkipReason::ALL.len()],
    /// Bytes discarded while resynchronizing after bad records.
    pub resync_bytes: u64,
    /// Trace records among [`RecordIndex::records`].
    pub traces: u64,
}

impl RecordIndex {
    /// Indexes `bytes` with one sequential lenient scan. Never panics:
    /// malformed content lands in the skip tallies, exactly as the
    /// lenient streaming decoder reports it.
    pub fn build(bytes: &[u8]) -> Self {
        let mut reader = WartsStreamReader::new(bytes).lenient().elide_unsupported_bodies();
        let mut records = Vec::new();
        let mut traces = 0u64;
        loop {
            match reader.next_record() {
                Ok(Some(rec)) => {
                    if let Some(span) = reader.last_record_span() {
                        records.push(span);
                    }
                    if matches!(rec, Record::Trace(_)) {
                        traces += 1;
                    }
                }
                Ok(None) => break,
                // Lenient over in-memory bytes cannot error; stop
                // indexing defensively if it ever does.
                Err(_) => break,
            }
        }
        let mut skip_counts = [0u64; SkipReason::ALL.len()];
        for (slot, reason) in skip_counts.iter_mut().zip(SkipReason::ALL) {
            *slot = reader.skip_counts().get(&reason).copied().unwrap_or(0);
        }
        RecordIndex {
            file_len: bytes.len() as u64,
            fingerprint: fingerprint_of(bytes),
            records,
            addr_table: reader.addr_snapshot(),
            skip_counts,
            resync_bytes: reader.resync_bytes(),
            traces,
        }
    }

    /// The cache path for a corpus file: `<file name>.lpridx` in the
    /// same directory.
    pub fn cache_path(file: &Path) -> PathBuf {
        let mut name = file.file_name().unwrap_or_default().to_os_string();
        name.push(".");
        name.push(INDEX_EXT);
        file.with_file_name(name)
    }

    /// The in-flight temp path a cache write goes through before its
    /// atomic rename to [`RecordIndex::cache_path`]. A crash mid-write
    /// leaves only this orphan (swept by
    /// [`crate::hygiene::sweep_stale`]), never a truncated `.lpridx`.
    pub fn tmp_cache_path(file: &Path) -> PathBuf {
        let mut name = Self::cache_path(file).into_os_string();
        name.push(".");
        name.push(INDEX_TMP_SUFFIX);
        PathBuf::from(name)
    }

    /// Loads the cached index for `file` if present and fresh for
    /// `bytes`, otherwise rebuilds (and best-effort re-caches when
    /// `cache` is set). Returns the index and whether it was a cache
    /// hit.
    ///
    /// The cache is written to a `.lpridx.tmp` sibling first and
    /// renamed into place, so a kill at any point leaves either the old
    /// cache, the new cache, or an orphaned temp file — never a
    /// truncated `.lpridx` that parses.
    pub fn load_or_build(file: &Path, bytes: &[u8], cache: bool) -> (Self, bool) {
        let cache_path = Self::cache_path(file);
        if let Ok(raw) = std::fs::read(&cache_path) {
            if let Some(index) = Self::from_bytes(&raw) {
                if index.matches(bytes) {
                    return (index, true);
                }
            }
        }
        let index = Self::build(bytes);
        if cache {
            let tmp = Self::tmp_cache_path(file);
            let written = std::fs::File::create(&tmp)
                .and_then(|mut f| f.write_all(&index.to_bytes()).and_then(|()| f.sync_all()));
            match written {
                Ok(()) => {
                    let _ = std::fs::rename(&tmp, &cache_path);
                }
                Err(_) => {
                    let _ = std::fs::remove_file(&tmp);
                }
            }
        }
        (index, false)
    }

    /// Whether this index still describes `bytes`.
    pub fn matches(&self, bytes: &[u8]) -> bool {
        self.file_len == bytes.len() as u64 && self.fingerprint == fingerprint_of(bytes)
    }

    /// The scan's skip tallies as the decoder reports them (zero
    /// entries omitted, like [`WartsStreamReader::skip_counts`]).
    pub fn skipped(&self) -> BTreeMap<SkipReason, u64> {
        SkipReason::ALL
            .into_iter()
            .zip(self.skip_counts)
            .filter(|&(_, n)| n > 0)
            .collect()
    }

    /// Total records skipped by the scan.
    pub fn skipped_total(&self) -> u64 {
        self.skip_counts.iter().sum()
    }

    /// Serializes the index (see the module docs for the layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.records.len() * 14 + self.addr_table.len() * 17);
        out.extend_from_slice(&INDEX_MAGIC);
        out.extend_from_slice(&INDEX_VERSION.to_be_bytes());
        out.extend_from_slice(&self.file_len.to_be_bytes());
        out.extend_from_slice(&self.fingerprint.to_be_bytes());
        out.extend_from_slice(&(self.records.len() as u64).to_be_bytes());
        for span in &self.records {
            out.extend_from_slice(&span.offset.to_be_bytes());
            out.extend_from_slice(&span.body_len.to_be_bytes());
            out.extend_from_slice(&span.record_type.to_be_bytes());
        }
        out.extend_from_slice(&(self.addr_table.len() as u64).to_be_bytes());
        for addr in &self.addr_table {
            match addr {
                Addr::V4(a) => {
                    out.push(1);
                    out.extend_from_slice(&a.octets());
                }
                Addr::V6(a) => {
                    out.push(2);
                    out.extend_from_slice(&a.octets());
                }
            }
        }
        for n in self.skip_counts {
            out.extend_from_slice(&n.to_be_bytes());
        }
        out.extend_from_slice(&self.resync_bytes.to_be_bytes());
        out.extend_from_slice(&self.traces.to_be_bytes());
        out
    }

    /// Deserializes an index; `None` on any structural mismatch (wrong
    /// magic/version, truncation, trailing garbage), which callers
    /// treat as a stale cache.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut cur = Cur { bytes, pos: 0 };
        if cur.take(4)? != INDEX_MAGIC {
            return None;
        }
        if u16::from_be_bytes(cur.take(2)?.try_into().ok()?) != INDEX_VERSION {
            return None;
        }
        let file_len = cur.u64()?;
        let fingerprint = cur.u64()?;
        let n_records = cur.u64()?;
        // Each record costs 14 bytes; reject impossible counts before
        // reserving.
        if n_records > (bytes.len() as u64) / 14 + 1 {
            return None;
        }
        let mut records = Vec::with_capacity(n_records as usize);
        for _ in 0..n_records {
            let offset = cur.u64()?;
            let body_len = u32::from_be_bytes(cur.take(4)?.try_into().ok()?);
            let record_type = u16::from_be_bytes(cur.take(2)?.try_into().ok()?);
            records.push(RecordSpan { offset, body_len, record_type });
        }
        let n_addrs = cur.u64()?;
        if n_addrs > (bytes.len() as u64) / 5 + 1 {
            return None;
        }
        let mut addr_table = Vec::with_capacity(n_addrs as usize);
        for _ in 0..n_addrs {
            let tag = cur.take(1)?[0];
            match tag {
                1 => {
                    let o: [u8; 4] = cur.take(4)?.try_into().ok()?;
                    addr_table.push(Addr::V4(o.into()));
                }
                2 => {
                    let o: [u8; 16] = cur.take(16)?.try_into().ok()?;
                    addr_table.push(Addr::V6(o.into()));
                }
                _ => return None,
            }
        }
        let mut skip_counts = [0u64; SkipReason::ALL.len()];
        for slot in &mut skip_counts {
            *slot = cur.u64()?;
        }
        let resync_bytes = cur.u64()?;
        let traces = cur.u64()?;
        if cur.pos != bytes.len() {
            return None;
        }
        Some(RecordIndex {
            file_len,
            fingerprint,
            records,
            addr_table,
            skip_counts,
            resync_bytes,
            traces,
        })
    }
}

/// Sampled FNV-1a fingerprint: file length plus the first and last
/// [`FINGERPRINT_SAMPLE`] bytes. Cheap on multi-gigabyte corpora while
/// catching truncation, append and header rewrites; a full-content
/// hash would re-read everything the index exists to avoid.
pub fn fingerprint_of(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |data: &[u8]| {
        for &b in data {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(&(bytes.len() as u64).to_be_bytes());
    let head = bytes.len().min(FINGERPRINT_SAMPLE);
    eat(&bytes[..head]);
    let tail_start = bytes.len().saturating_sub(FINGERPRINT_SAMPLE).max(head);
    eat(&bytes[tail_start..]);
    h
}

struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_be_bytes(self.take(8)?.try_into().ok()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use warts::{HopRecord, TraceRecord, WartsWriter};

    fn a(o: u8) -> Addr {
        Addr::V4(Ipv4Addr::new(10, 0, 0, o))
    }

    fn sample_stream(traces: u8) -> Vec<u8> {
        let mut w = WartsWriter::new();
        let list = w.list(1, "idx");
        let cycle = w.cycle_start(list, 1, 0);
        for i in 0..traces {
            let mut t = TraceRecord::new(a(1), a(100 + i));
            t.hops = vec![
                HopRecord::reply(1, a(10 + i), 500),
                HopRecord::reply(2, a(100 + i), 900),
            ];
            w.trace(&t).unwrap();
        }
        w.cycle_stop(cycle, 60);
        w.into_bytes()
    }

    #[test]
    fn index_covers_every_record_and_counts_traces() {
        let bytes = sample_stream(5);
        let index = RecordIndex::build(&bytes);
        assert_eq!(index.records.len(), 8, "list + cycle start/stop + 5 traces");
        assert_eq!(index.traces, 5);
        assert_eq!(index.skipped_total(), 0);
        // Spans tile the file.
        let mut pos = 0u64;
        for span in &index.records {
            assert_eq!(span.offset, pos);
            pos += span.wire_len();
        }
        assert_eq!(pos, bytes.len() as u64);
        // The dictionary holds each distinct address once.
        assert_eq!(index.addr_table.len(), 1 + 5 + 5, "src + per-trace hop + dst");
    }

    #[test]
    fn roundtrips_through_bytes() {
        let bytes = sample_stream(3);
        let index = RecordIndex::build(&bytes);
        let restored = RecordIndex::from_bytes(&index.to_bytes()).unwrap();
        assert_eq!(restored, index);
    }

    #[test]
    fn truncated_or_garbled_serializations_are_rejected() {
        let encoded = RecordIndex::build(&sample_stream(2)).to_bytes();
        for cut in [0, 3, 7, encoded.len() / 2, encoded.len() - 1] {
            assert!(RecordIndex::from_bytes(&encoded[..cut]).is_none(), "cut at {cut}");
        }
        let mut trailing = encoded.clone();
        trailing.push(0);
        assert!(RecordIndex::from_bytes(&trailing).is_none(), "trailing garbage");
        let mut wrong_magic = encoded;
        wrong_magic[0] ^= 0xFF;
        assert!(RecordIndex::from_bytes(&wrong_magic).is_none());
    }

    #[test]
    fn cache_roundtrip_hits_and_detects_staleness() {
        let dir = std::env::temp_dir().join(format!("lpr-idx-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("cycle.warts");
        let bytes = sample_stream(4);
        std::fs::write(&file, &bytes).unwrap();

        let (built, hit) = RecordIndex::load_or_build(&file, &bytes, true);
        assert!(!hit, "first open builds");
        assert!(RecordIndex::cache_path(&file).exists());
        let (cached, hit) = RecordIndex::load_or_build(&file, &bytes, true);
        assert!(hit, "second open hits the cache");
        assert_eq!(cached, built);

        // Rewriting the file invalidates the cache.
        let longer = sample_stream(6);
        std::fs::write(&file, &longer).unwrap();
        let (rebuilt, hit) = RecordIndex::load_or_build(&file, &longer, true);
        assert!(!hit, "stale cache rebuilds");
        assert_eq!(rebuilt.traces, 6);

        // Same length, different content: the fingerprint still trips.
        let mut tweaked = longer.clone();
        let last = tweaked.len() - 1;
        tweaked[last] ^= 0xFF;
        assert!(!rebuilt.matches(&tweaked));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_input_lands_in_skip_tallies() {
        let mut bytes = sample_stream(3);
        // Smash the magic of the second record.
        let second = RecordIndex::build(&bytes).records[1].offset as usize;
        bytes[second] = 0xDE;
        bytes[second + 1] = 0xAD;
        let index = RecordIndex::build(&bytes);
        assert!(index.skipped_total() > 0);
        assert!(index.skipped().contains_key(&SkipReason::BadMagic));
        assert!(index.resync_bytes > 0);
    }
}
