//! Crash-leftover hygiene for spool and spill directories.
//!
//! A process killed mid-run can leave two kinds of debris behind:
//! orphaned `.lpridx.tmp` index writes (the atomic-rename protocol in
//! [`crate::index::RecordIndex::load_or_build`] guarantees a truncated
//! `.lpridx` can never be *renamed into place*, but the temp file
//! itself survives a kill) and stale `.spill`/`.spillrun` files from an
//! interrupted out-of-core persistence window. Neither is ever valid
//! input to a later run, so `lpr classify --out-of-core` and `lpr
//! serve` sweep them at startup.

use std::io;
use std::path::{Path, PathBuf};

/// File-name suffixes [`sweep_stale`] removes. All three are
/// regenerable artifacts: temp index writes and persistence-window
/// spill files.
pub const STALE_SUFFIXES: [&str; 3] = [".lpridx.tmp", ".spill", ".spillrun"];

/// Removes crash leftovers (see [`STALE_SUFFIXES`]) from `dir`,
/// non-recursively, and returns the paths removed. A missing `dir` is
/// not an error (nothing to sweep); per-file removal is best-effort.
/// Counts swept files on the `corpus.index.swept` counter.
pub fn sweep_stale(
    dir: &Path,
    recorder: Option<&lpr_obs::Recorder>,
) -> io::Result<Vec<PathBuf>> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut swept = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if !path.is_file() {
            continue;
        }
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if STALE_SUFFIXES.iter().any(|s| name.ends_with(s))
            && std::fs::remove_file(&path).is_ok()
        {
            swept.push(path);
        }
    }
    swept.sort();
    if let Some(rec) = recorder {
        if !swept.is_empty() {
            rec.counter(lpr_obs::names::CORPUS_INDEX_SWEPT).add(swept.len() as u64);
        }
    }
    Ok(swept)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lpr-hygiene-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn sweeps_only_stale_artifacts() {
        let dir = tmp("sweep");
        for name in ["a.warts", "a.warts.lpridx", "a.warts.lpridx.tmp", "snap0.spill", "x-run0.spillrun"] {
            std::fs::write(dir.join(name), b"x").unwrap();
        }
        let rec = lpr_obs::Recorder::new("sweep");
        let swept = sweep_stale(&dir, Some(&rec)).unwrap();
        assert_eq!(swept.len(), 3);
        assert!(dir.join("a.warts").exists(), "corpus files stay");
        assert!(dir.join("a.warts.lpridx").exists(), "valid index caches stay");
        assert!(!dir.join("a.warts.lpridx.tmp").exists());
        assert!(!dir.join("snap0.spill").exists());
        assert!(!dir.join("x-run0.spillrun").exists());
        assert_eq!(rec.finish().counter(lpr_obs::names::CORPUS_INDEX_SWEPT), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_dir_is_a_clean_noop() {
        let dir = tmp("gone").join("nope");
        assert!(sweep_stale(&dir, None).unwrap().is_empty());
    }
}
