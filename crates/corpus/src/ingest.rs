//! Indexed, sharded, bounded-memory ingest.
//!
//! [`ingest_cycle`] is the out-of-core counterpart of the in-memory
//! pipeline's trace ingest ([`lpr_core::Pipeline::run_par_recorded`]'s
//! front half): it cuts every file's record index into contiguous
//! [`RangeTask`]s and maps them over [`lpr_par::map_shards`]. Each
//! task decodes its trace records straight out of the file mapping
//! (against a preload of the file's full address dictionary), converts
//! and filters them **one at a time** through a
//! [`CycleAccumulator`], and hands back an owned [`IngestState`];
//! merging the states in task order reproduces the sequential ingest
//! exactly. Peak memory is the surviving LSPs plus one record body per
//! worker — never the corpus, never the trace list.

use crate::corpus::{Corpus, DecodeReport};
use lpr_core::filter::{lsp_keys_of_tunnels, AsMapper};
use lpr_core::lsp::LspKey;
use lpr_core::pipeline::IngestState;
use lpr_core::spill::{KeySpiller, SpilledKeys};
use lpr_core::stream::CycleAccumulator;
use lpr_core::trace::Trace;
use lpr_core::tunnel::RawTunnel;
use std::collections::BTreeSet;
use std::io;
use std::path::Path;
use warts::{decode_record_body, Record, RecordType};

/// How the ingest shards its work.
#[derive(Clone, Copy, Debug)]
pub struct IngestOptions {
    /// Worker threads (0 = available parallelism), as in
    /// [`lpr_par::ShardOptions`].
    pub threads: usize,
    /// Indexed records per [`RangeTask`]: small enough that large
    /// files split across workers, large enough to amortize the
    /// per-task dictionary preload.
    pub records_per_task: usize,
}

impl IngestOptions {
    /// Options for `threads` workers with the default task geometry.
    pub fn new(threads: usize) -> Self {
        IngestOptions { threads, records_per_task: 4096 }
    }
}

/// One contiguous slice of one file's record index.
#[derive(Clone, Copy, Debug)]
pub struct RangeTask {
    /// Index into [`Corpus::files`].
    pub file: usize,
    /// First record (inclusive) in that file's index.
    pub start: usize,
    /// Last record (exclusive).
    pub end: usize,
}

/// Cuts the corpus into decode tasks, in cycle order.
pub fn range_tasks(corpus: &Corpus, records_per_task: usize) -> Vec<RangeTask> {
    let per_task = records_per_task.max(1);
    let mut tasks = Vec::new();
    for (file, cf) in corpus.files.iter().enumerate() {
        let n = cf.index.records.len();
        let mut start = 0;
        while start < n {
            let end = (start + per_task).min(n);
            tasks.push(RangeTask { file, start, end });
            start = end;
        }
    }
    tasks
}

fn shard_opts(threads: usize) -> lpr_par::ShardOptions {
    // Tasks are coarse units already; let every task be schedulable on
    // its own rather than grouping 64 of them per shard.
    lpr_par::ShardOptions { threads, shards_per_thread: 4, min_shard_len: 1 }
}

/// Decodes the trace records of one task and feeds each to `push`.
/// Returns `(convert_failures, decode_errors)`.
fn decode_task(
    corpus: &Corpus,
    task: &RangeTask,
    mut push: impl FnMut(&Trace),
) -> (u64, u64) {
    let file = &corpus.files[task.file];
    let bytes = file.bytes();
    // Preload the file's complete dictionary: every reference id a
    // record can carry resolves below the preload, so range-local
    // decode equals sequential decode (embed-form occurrences append
    // duplicates past it, which nothing references).
    let mut addrs = warts::AddrTableReader::from_table(file.index.addr_table.clone());
    let mut convert_failures = 0u64;
    let mut decode_errors = 0u64;
    for span in &file.index.records[task.start..task.end] {
        if span.record_type != RecordType::Trace as u16 {
            continue;
        }
        let start = span.offset as usize + 8;
        let body = &bytes[start..start + span.body_len as usize];
        match decode_record_body(span.record_type, body, &mut addrs) {
            Ok(Record::Trace(rec)) => match warts::trace_to_core(&rec) {
                Ok(Some(trace)) => push(&trace),
                Ok(None) => {} // non-IPv4, outside the paper's dataset
                Err(_) => convert_failures += 1,
            },
            Ok(_) => {}
            // The index only records successful decodes, so this is
            // unreachable in practice; counted, not fatal.
            Err(_) => decode_errors += 1,
        }
    }
    (convert_failures, decode_errors)
}

/// Runs the pipeline's ingest half over an indexed corpus: sharded
/// zero-copy decode, per-trace validation/extraction/filtering, shard-
/// order merge. The result feeds
/// [`lpr_core::Pipeline::finish_stages_windowed`] and is byte-identical
/// to the in-memory ingest over the same traces at any thread count.
pub fn ingest_cycle(
    corpus: &Corpus,
    mapper: &(dyn AsMapper + Sync),
    opts: IngestOptions,
    recorder: Option<&lpr_obs::Recorder>,
) -> (IngestState, DecodeReport) {
    let tasks = range_tasks(corpus, opts.records_per_task);
    let run = lpr_par::map_shards(&tasks, shard_opts(opts.threads), |_, shard| {
        let mut state = IngestState::default();
        let mut convert_failures = 0u64;
        let mut decode_errors = 0u64;
        let mut mpls_traces = 0u64;
        for task in shard {
            let mut acc = CycleAccumulator::new(mapper);
            let (cf, de) = decode_task(corpus, task, |trace| {
                if trace.has_mpls() {
                    mpls_traces += 1;
                }
                acc.push_trace(trace);
            });
            convert_failures += cf;
            decode_errors += de;
            state.merge(acc.into_state());
        }
        (state, convert_failures, decode_errors, mpls_traces)
    });

    let mut ingest = IngestState::default();
    let mut report = corpus.decode_report();
    let mut decode_errors = 0u64;
    for (state, cf, de, mpls) in run.outputs {
        ingest.merge(state);
        report.convert_failures += cf;
        decode_errors += de;
        report.mpls_traces += mpls;
    }
    if let Some(rec) = recorder {
        rec.counter(lpr_obs::names::INGEST_SPILLED_TRACES).add(ingest.traces_in);
        if decode_errors > 0 {
            rec.counter(lpr_obs::names::CORPUS_SHARD_DECODE_ERRORS).add(decode_errors);
        }
    }
    (ingest, report)
}

/// The per-task key extraction shared by both snapshot-key paths.
fn task_keys(corpus: &Corpus, task: &RangeTask) -> BTreeSet<LspKey> {
    let mut tunnels: Vec<RawTunnel> = Vec::new();
    decode_task(corpus, task, |trace| {
        if lpr_core::quarantine::validate_trace(trace).is_ok() {
            lpr_core::extract_tunnels_into(trace, &mut tunnels);
        }
    });
    lsp_keys_of_tunnels(&tunnels)
}

/// The corpus's LSP key set (what [`lpr_core::Pipeline::snapshot_keys`]
/// computes from an in-memory trace list), sharded. Set unions are
/// order-insensitive, so the result matches the sequential one.
pub fn snapshot_keys(corpus: &Corpus, threads: usize) -> BTreeSet<LspKey> {
    let tasks = range_tasks(corpus, IngestOptions::new(threads).records_per_task);
    let run = lpr_par::map_shards(&tasks, shard_opts(threads), |_, shard| {
        let mut keys = BTreeSet::new();
        for task in shard {
            keys.extend(task_keys(corpus, task));
        }
        keys
    });
    let mut keys = BTreeSet::new();
    for shard in run.outputs {
        keys.extend(shard);
    }
    keys
}

/// Out-of-core [`snapshot_keys`]: the keys go to a sorted spill file
/// under `dir` instead of an in-memory set. Tasks are processed in
/// bounded batches (decode parallel, spill sequential), so peak memory
/// is one batch's keys plus the spiller's run buffer — the future
/// snapshots of a persistence window never coexist in RAM.
pub fn spill_snapshot_keys(
    corpus: &Corpus,
    dir: &Path,
    label: &str,
    threads: usize,
    recorder: Option<&lpr_obs::Recorder>,
) -> io::Result<SpilledKeys> {
    let tasks = range_tasks(corpus, IngestOptions::new(threads).records_per_task);
    let mut spiller = KeySpiller::new(dir, label)?;
    for batch in tasks.chunks(64) {
        let run = lpr_par::map_shards(batch, shard_opts(threads), |_, shard| {
            let mut keys = BTreeSet::new();
            for task in shard {
                keys.extend(task_keys(corpus, task));
            }
            keys
        });
        for keys in run.outputs {
            for key in &keys {
                spiller.push(key)?;
            }
        }
    }
    let spilled = spiller.finish()?;
    if let Some(rec) = recorder {
        rec.counter(lpr_obs::names::INGEST_SPILLED_KEYS).add(spilled.count);
        rec.counter(lpr_obs::names::INGEST_SPILL_BYTES).add(spilled.bytes);
    }
    Ok(spilled)
}

/// Sequentially loads every trace of the corpus, in cycle order — the
/// in-memory reference the out-of-core path is checked against.
/// Returns the traces and the convert-failure count.
pub fn load_traces(corpus: &Corpus) -> (Vec<Trace>, u64) {
    let mut traces = Vec::new();
    let mut convert_failures = 0u64;
    for file in 0..corpus.files.len() {
        let n = corpus.files[file].index.records.len();
        let task = RangeTask { file, start: 0, end: n };
        let (cf, _) = decode_task(corpus, &task, |trace| traces.push(trace.clone()));
        convert_failures += cf;
    }
    (traces, convert_failures)
}
