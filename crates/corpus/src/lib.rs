//! # lpr-corpus — out-of-core warts corpora
//!
//! The paper's dataset holds ~14 million LSPs *per cycle*, spread over
//! many warts files per monitor; the demo-scale path loads a cycle's
//! traces wholesale before running the pipeline. This crate is the
//! paper-scale ingest layer that never does that:
//!
//! - [`mmap::MappedFile`] memory-maps each corpus file (read-only,
//!   private), so raw bytes are paged in on demand and never copied;
//!   when `mmap` is unavailable it falls back to a plain read.
//! - [`index::RecordIndex`] records, for every successfully decoded
//!   record, its offset, body length and type — built in one sequential
//!   *lenient* scan (so its skip tallies are, by construction, exactly
//!   the sequential lenient decoder's) and cached on disk next to the
//!   file as `<name>.lpridx` with a staleness fingerprint.
//! - [`ingest_cycle`] cuts the indexed records into ranges and feeds
//!   them to [`lpr_par::map_shards`]: decode shards across files *and*
//!   within large files. Each shard preloads the file's complete
//!   address dictionary (captured by the index scan), which makes
//!   range-local decode exactly equal to sequential decode; traces are
//!   converted, filtered and dropped one at a time, so only surviving
//!   LSPs are retained.
//! - [`writer::write_corpus_files`] splits a simulated cycle across
//!   multiple self-contained warts files, the shape real Ark cycles
//!   come in.
//!
//! Shard-order merging keeps the result **byte-identical** to the
//! in-memory pipeline at any thread count; `lpr-bench` enforces that
//! with its golden-fingerprint self-check.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod hygiene;
pub mod index;
pub mod ingest;
pub mod mmap;
pub mod writer;

pub use corpus::{Corpus, CorpusFile, DecodeReport, FileSkipReason, SkippedFile};
pub use hygiene::{sweep_stale, STALE_SUFFIXES};
pub use index::RecordIndex;
pub use ingest::{ingest_cycle, snapshot_keys, spill_snapshot_keys, IngestOptions};
pub use mmap::MappedFile;
pub use writer::write_corpus_files;
