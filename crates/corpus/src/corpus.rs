//! A multi-file warts corpus, mapped and indexed.

use crate::index::RecordIndex;
use crate::mmap::MappedFile;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use warts::SkipReason;

/// One mapped + indexed corpus file.
pub struct CorpusFile {
    /// Where the file lives.
    pub path: PathBuf,
    map: MappedFile,
    /// The file's record index (loaded from cache or built on open).
    pub index: RecordIndex,
}

impl CorpusFile {
    /// The file's raw bytes (borrowed from the mapping — no copy).
    pub fn bytes(&self) -> &[u8] {
        self.map.bytes()
    }

    /// The body slice of record `rec` (header excluded), straight out
    /// of the mapping.
    pub fn body(&self, rec: usize) -> &[u8] {
        let span = &self.index.records[rec];
        let start = span.offset as usize + 8;
        &self.bytes()[start..start + span.body_len as usize]
    }
}

/// Why [`Corpus::open`] set a file aside instead of indexing it.
///
/// Both shapes are what a spool directory looks like while scamper is
/// still writing in place: skipping the *file* (and picking it up on a
/// later scan) is the correct move, failing the whole corpus open is
/// not.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FileSkipReason {
    /// Zero-length file: created, nothing written yet.
    Empty,
    /// The file ends in a half-written record — the tail bytes parse as
    /// the *start* of a record whose declared length runs past EOF. The
    /// wrapped [`SkipReason`] says how the tail fell short.
    StillGrowing(SkipReason),
}

impl FileSkipReason {
    /// Short machine-readable name (stable, used in quarantine reason
    /// files and skip summaries).
    pub fn name(&self) -> &'static str {
        match self {
            FileSkipReason::Empty => "empty",
            FileSkipReason::StillGrowing(_) => "still_growing",
        }
    }
}

impl std::fmt::Display for FileSkipReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FileSkipReason::Empty => write!(f, "empty"),
            FileSkipReason::StillGrowing(r) => write!(f, "still_growing({})", r.name()),
        }
    }
}

/// One file [`Corpus::open`] skipped, with its structured reason.
#[derive(Clone, Debug)]
pub struct SkippedFile {
    /// The skipped file.
    pub path: PathBuf,
    /// Why it was set aside.
    pub reason: FileSkipReason,
}

/// An open corpus: one measurement cycle spread over N files.
pub struct Corpus {
    /// The cycle's files, in the order given to [`Corpus::open`] — the
    /// cycle's record order is file order, then stream order within
    /// each file.
    pub files: Vec<CorpusFile>,
    /// Files set aside as empty or still-growing (spool hygiene); the
    /// rest of the corpus opens normally.
    pub skipped_files: Vec<SkippedFile>,
}

/// Decode accounting for a corpus pass, mirroring what the sequential
/// lenient loader reports: the skip tallies come from each file's
/// index scan (equal to a sequential lenient decode by construction),
/// `convert_failures` from the warts→core conversion during ingest.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DecodeReport {
    /// Trace records decoded.
    pub traces: u64,
    /// Ingested traces crossing at least one explicit MPLS tunnel
    /// (filled by [`crate::ingest_cycle`]; index scans leave it 0).
    pub mpls_traces: u64,
    /// Malformed records skipped, by reason (zero entries omitted).
    pub skipped: BTreeMap<SkipReason, u64>,
    /// Bytes discarded while resynchronizing.
    pub resync_bytes: u64,
    /// Traces that decoded but failed warts→core conversion.
    pub convert_failures: u64,
}

impl DecodeReport {
    /// Total records skipped.
    pub fn skipped_total(&self) -> u64 {
        self.skipped.values().sum()
    }
}

/// Detects a half-written final record: the bytes after the last
/// indexed span parse as the *start* of a warts record (correct magic)
/// whose header or declared body runs past EOF. Mid-file garbage does
/// not match — that is corruption, already tallied as per-record skips
/// by the index scan — only a well-formed prefix at the very end of the
/// file reads as "scamper has not finished writing this one yet".
fn growing_tail(bytes: &[u8], index: &RecordIndex) -> Option<SkipReason> {
    let end = index
        .records
        .last()
        .map(|span| span.offset as usize + 8 + span.body_len as usize)
        .unwrap_or(0);
    let tail = &bytes[end.min(bytes.len())..];
    if tail.len() < 2 || tail[..2] != warts::WARTS_MAGIC.to_be_bytes() {
        return None;
    }
    if tail.len() < 8 {
        return Some(SkipReason::TruncatedHeader);
    }
    let body_len = u32::from_be_bytes([tail[4], tail[5], tail[6], tail[7]]) as usize;
    if 8 + body_len > tail.len() {
        return Some(SkipReason::TruncatedBody);
    }
    None
}

impl Corpus {
    /// Opens and indexes `paths` (writing `.lpridx` caches next to
    /// them).
    pub fn open<P: AsRef<Path>>(paths: &[P]) -> io::Result<Self> {
        Self::open_with(paths, true, None)
    }

    /// [`Corpus::open`] with cache control and telemetry: counts
    /// files/bytes mapped, index hits vs builds, and records indexed.
    pub fn open_with<P: AsRef<Path>>(
        paths: &[P],
        cache: bool,
        recorder: Option<&lpr_obs::Recorder>,
    ) -> io::Result<Self> {
        let mut files = Vec::with_capacity(paths.len());
        let mut skipped_files = Vec::new();
        let (mut bytes, mut hits, mut builds, mut records) = (0u64, 0u64, 0u64, 0u64);
        for path in paths {
            let path = path.as_ref().to_path_buf();
            let map = MappedFile::open(&path)?;
            if map.is_empty() {
                skipped_files.push(SkippedFile { path, reason: FileSkipReason::Empty });
                continue;
            }
            let (index, hit) = RecordIndex::load_or_build(&path, map.bytes(), cache);
            if let Some(reason) = growing_tail(map.bytes(), &index) {
                skipped_files
                    .push(SkippedFile { path, reason: FileSkipReason::StillGrowing(reason) });
                continue;
            }
            bytes += map.len() as u64;
            if hit {
                hits += 1;
            } else {
                builds += 1;
            }
            records += index.records.len() as u64;
            files.push(CorpusFile { path, map, index });
        }
        if let Some(rec) = recorder {
            rec.counter(lpr_obs::names::CORPUS_FILES_MAPPED).add(files.len() as u64);
            rec.counter(lpr_obs::names::CORPUS_BYTES_MAPPED).add(bytes);
            rec.counter(lpr_obs::names::CORPUS_INDEX_HITS).add(hits);
            rec.counter(lpr_obs::names::CORPUS_INDEX_BUILDS).add(builds);
            rec.counter(lpr_obs::names::CORPUS_RECORDS_INDEXED).add(records);
            if !skipped_files.is_empty() {
                rec.counter(lpr_obs::names::CORPUS_FILES_SKIPPED)
                    .add(skipped_files.len() as u64);
            }
        }
        Ok(Corpus { files, skipped_files })
    }

    /// Total corpus size, bytes.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.bytes().len() as u64).sum()
    }

    /// Total successfully indexed records.
    pub fn total_records(&self) -> u64 {
        self.files.iter().map(|f| f.index.records.len() as u64).sum()
    }

    /// Total trace records.
    pub fn total_traces(&self) -> u64 {
        self.files.iter().map(|f| f.index.traces).sum()
    }

    /// The corpus-wide decode accounting from the index scans
    /// (`convert_failures` stays 0 here; [`crate::ingest_cycle`] fills
    /// it in).
    pub fn decode_report(&self) -> DecodeReport {
        let mut report = DecodeReport::default();
        for file in &self.files {
            report.traces += file.index.traces;
            report.resync_bytes += file.index.resync_bytes;
            for (reason, n) in file.index.skipped() {
                *report.skipped.entry(reason).or_default() += n;
            }
        }
        report
    }
}
