//! A multi-file warts corpus, mapped and indexed.

use crate::index::RecordIndex;
use crate::mmap::MappedFile;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use warts::SkipReason;

/// One mapped + indexed corpus file.
pub struct CorpusFile {
    /// Where the file lives.
    pub path: PathBuf,
    map: MappedFile,
    /// The file's record index (loaded from cache or built on open).
    pub index: RecordIndex,
}

impl CorpusFile {
    /// The file's raw bytes (borrowed from the mapping — no copy).
    pub fn bytes(&self) -> &[u8] {
        self.map.bytes()
    }

    /// The body slice of record `rec` (header excluded), straight out
    /// of the mapping.
    pub fn body(&self, rec: usize) -> &[u8] {
        let span = &self.index.records[rec];
        let start = span.offset as usize + 8;
        &self.bytes()[start..start + span.body_len as usize]
    }
}

/// An open corpus: one measurement cycle spread over N files.
pub struct Corpus {
    /// The cycle's files, in the order given to [`Corpus::open`] — the
    /// cycle's record order is file order, then stream order within
    /// each file.
    pub files: Vec<CorpusFile>,
}

/// Decode accounting for a corpus pass, mirroring what the sequential
/// lenient loader reports: the skip tallies come from each file's
/// index scan (equal to a sequential lenient decode by construction),
/// `convert_failures` from the warts→core conversion during ingest.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DecodeReport {
    /// Trace records decoded.
    pub traces: u64,
    /// Ingested traces crossing at least one explicit MPLS tunnel
    /// (filled by [`crate::ingest_cycle`]; index scans leave it 0).
    pub mpls_traces: u64,
    /// Malformed records skipped, by reason (zero entries omitted).
    pub skipped: BTreeMap<SkipReason, u64>,
    /// Bytes discarded while resynchronizing.
    pub resync_bytes: u64,
    /// Traces that decoded but failed warts→core conversion.
    pub convert_failures: u64,
}

impl DecodeReport {
    /// Total records skipped.
    pub fn skipped_total(&self) -> u64 {
        self.skipped.values().sum()
    }
}

impl Corpus {
    /// Opens and indexes `paths` (writing `.lpridx` caches next to
    /// them).
    pub fn open<P: AsRef<Path>>(paths: &[P]) -> io::Result<Self> {
        Self::open_with(paths, true, None)
    }

    /// [`Corpus::open`] with cache control and telemetry: counts
    /// files/bytes mapped, index hits vs builds, and records indexed.
    pub fn open_with<P: AsRef<Path>>(
        paths: &[P],
        cache: bool,
        recorder: Option<&lpr_obs::Recorder>,
    ) -> io::Result<Self> {
        let mut files = Vec::with_capacity(paths.len());
        let (mut bytes, mut hits, mut builds, mut records) = (0u64, 0u64, 0u64, 0u64);
        for path in paths {
            let path = path.as_ref().to_path_buf();
            let map = MappedFile::open(&path)?;
            let (index, hit) = RecordIndex::load_or_build(&path, map.bytes(), cache);
            bytes += map.len() as u64;
            if hit {
                hits += 1;
            } else {
                builds += 1;
            }
            records += index.records.len() as u64;
            files.push(CorpusFile { path, map, index });
        }
        if let Some(rec) = recorder {
            rec.counter(lpr_obs::names::CORPUS_FILES_MAPPED).add(files.len() as u64);
            rec.counter(lpr_obs::names::CORPUS_BYTES_MAPPED).add(bytes);
            rec.counter(lpr_obs::names::CORPUS_INDEX_HITS).add(hits);
            rec.counter(lpr_obs::names::CORPUS_INDEX_BUILDS).add(builds);
            rec.counter(lpr_obs::names::CORPUS_RECORDS_INDEXED).add(records);
        }
        Ok(Corpus { files })
    }

    /// Total corpus size, bytes.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.bytes().len() as u64).sum()
    }

    /// Total successfully indexed records.
    pub fn total_records(&self) -> u64 {
        self.files.iter().map(|f| f.index.records.len() as u64).sum()
    }

    /// Total trace records.
    pub fn total_traces(&self) -> u64 {
        self.files.iter().map(|f| f.index.traces).sum()
    }

    /// The corpus-wide decode accounting from the index scans
    /// (`convert_failures` stays 0 here; [`crate::ingest_cycle`] fills
    /// it in).
    pub fn decode_report(&self) -> DecodeReport {
        let mut report = DecodeReport::default();
        for file in &self.files {
            report.traces += file.index.traces;
            report.resync_bytes += file.index.resync_bytes;
            for (reason, n) in file.index.skipped() {
                *report.skipped.entry(reason).or_default() += n;
            }
        }
        report
    }
}
