//! Out-of-core vs in-memory equivalence: the headline guarantee of the
//! corpus layer. A simulated multi-file cycle is written, mapped,
//! indexed and ingested out-of-core at several thread counts; every
//! run must be **equal** (PipelineOutput derives PartialEq over IOTPs,
//! report and dynamic ASes) to the in-memory pipeline over the
//! sequentially loaded traces — including when the persistence window
//! is spilled to disk.

use lpr_core::filter::FilterConfig;
use lpr_core::lsp::Asn;
use lpr_core::pipeline::PersistenceWindow;
use lpr_core::prelude::*;
use lpr_core::trace::{Hop, Trace};
use lpr_corpus::{ingest_cycle, snapshot_keys, spill_snapshot_keys, Corpus, IngestOptions};
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};

fn ip(a: u8, o: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, a, 0, o)
}

fn mapper(addr: Ipv4Addr) -> Option<Asn> {
    let o = addr.octets();
    match o[0] {
        10 => Some(Asn(o[1] as u32)),
        192 => Some(Asn(100)),
        198 => Some(Asn(101)),
        _ => None,
    }
}

fn mpls_trace(asn: u8, dst: Ipv4Addr, labels: [u32; 2], lsrs: [u8; 2]) -> Trace {
    let mut t = Trace::new(Ipv4Addr::new(203, 0, 113, 5), dst);
    t.push_hop(Hop::responsive(1, ip(asn, 1)));
    t.push_hop(Hop::labelled(2, ip(asn, lsrs[0]), &[Lse::transit(labels[0], 254)]));
    t.push_hop(Hop::labelled(3, ip(asn, lsrs[1]), &[Lse::transit(labels[1], 253)]));
    t.push_hop(Hop::responsive(4, ip(asn, 9)));
    t.push_hop(Hop::responsive(5, dst));
    t.reached = true;
    t
}

/// Several ASes, diverse and non-diverse IOTPs, enough traces for
/// multiple record-range tasks and shards.
fn workload() -> Vec<Trace> {
    let mut traces = Vec::new();
    for asn in 1..=6u8 {
        for i in 0..40u32 {
            let dst = if i % 2 == 0 {
                Ipv4Addr::new(192, 0, 2, 10 + (i % 100) as u8)
            } else {
                Ipv4Addr::new(198, 51, 100, 10 + (i % 100) as u8)
            };
            traces.push(mpls_trace(asn, dst, [100 + i % 3, 200 + i % 3], [2, 3]));
        }
    }
    traces
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lpr-ooc-{}-{}", name, std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn open_workload_corpus(dir: &Path, n_files: usize) -> (Corpus, Vec<Trace>) {
    let traces = workload();
    let paths = lpr_corpus::write_corpus_files(dir, "cycle", &traces, n_files).unwrap();
    assert_eq!(paths.len(), n_files);
    (Corpus::open(&paths).unwrap(), traces)
}

#[test]
fn out_of_core_output_is_identical_at_every_thread_count() {
    let dir = tmp("equiv");
    let (corpus, traces) = open_workload_corpus(&dir, 3);
    assert_eq!(corpus.total_traces(), traces.len() as u64);

    // Reference: sequentially load the corpus back and run in memory.
    let (loaded, convert_failures) = lpr_corpus::ingest::load_traces(&corpus);
    assert_eq!(convert_failures, 0);
    assert_eq!(loaded.len(), traces.len());
    let keys = vec![Pipeline::snapshot_keys(&loaded)];
    let pipeline = Pipeline::default();
    let reference = pipeline.run_par(&loaded, &mapper, &keys, 1);
    assert!(!reference.iotps.is_empty(), "workload must classify something");

    // Small tasks force intra-file sharding on top of the 3-file split.
    for threads in [1usize, 2, 4, 8] {
        let opts = IngestOptions { threads, records_per_task: 37 };
        let (ingest, report) = ingest_cycle(&corpus, &mapper, opts, None);
        assert_eq!(report.traces, traces.len() as u64, "threads={threads}");
        assert_eq!(report.skipped_total(), 0);
        let out = pipeline
            .finish_stages_windowed(
                ingest,
                PersistenceWindow::Mem(&keys),
                None,
                lpr_par::ShardOptions::new(threads),
            )
            .unwrap();
        assert_eq!(out, reference, "threads={threads}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corpus_snapshot_keys_match_in_memory_and_spilled_window_agrees() {
    let dir = tmp("spill");
    let (corpus, _) = open_workload_corpus(&dir, 2);
    let (loaded, _) = lpr_corpus::ingest::load_traces(&corpus);

    // Key sets agree between the corpus path and the in-memory path.
    let mem_keys = Pipeline::snapshot_keys(&loaded);
    for threads in [1usize, 4] {
        assert_eq!(snapshot_keys(&corpus, threads), mem_keys, "threads={threads}");
    }

    // A spilled persistence window produces the same PipelineOutput as
    // the in-memory window over the same keys.
    let spill_dir = dir.join("spill");
    let spilled =
        vec![spill_snapshot_keys(&corpus, &spill_dir, "snap0", 2, None).unwrap()];
    assert_eq!(spilled[0].count, mem_keys.len() as u64);

    let pipeline = Pipeline::new(FilterConfig { persistence_window: 1, ..Default::default() });
    let window = vec![mem_keys];
    let (ingest_a, _) = ingest_cycle(&corpus, &mapper, IngestOptions::new(2), None);
    let (ingest_b, _) = ingest_cycle(&corpus, &mapper, IngestOptions::new(2), None);
    let mem_out = pipeline
        .finish_stages_windowed(
            ingest_a,
            PersistenceWindow::Mem(&window),
            None,
            lpr_par::ShardOptions::new(2),
        )
        .unwrap();
    let spilled_out = pipeline
        .finish_stages_windowed(
            ingest_b,
            PersistenceWindow::Spilled(&spilled),
            None,
            lpr_par::ShardOptions::new(2),
        )
        .unwrap();
    assert_eq!(spilled_out, mem_out);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corpus_counters_stay_inside_the_names_vocabulary() {
    let dir = tmp("names");
    let (corpus, traces) = {
        let traces = workload();
        let paths = lpr_corpus::write_corpus_files(&dir, "cycle", &traces, 2).unwrap();
        let rec = lpr_obs::Recorder::new("corpus-open");
        // Open twice: first builds indexes, second hits the caches.
        drop(Corpus::open_with(&paths, true, Some(&rec)).unwrap());
        let corpus = Corpus::open_with(&paths, true, Some(&rec)).unwrap();
        let _ = spill_snapshot_keys(&corpus, &dir.join("spill"), "snap0", 2, Some(&rec));
        let (_, _) = ingest_cycle(&corpus, &mapper, IngestOptions::new(2), Some(&rec));
        let telemetry = rec.finish();
        for name in telemetry.counters.keys() {
            assert!(
                lpr_obs::names::is_known_counter(name),
                "counter {name} is not in lpr_obs::names::ALL_COUNTERS"
            );
        }
        assert_eq!(telemetry.counters["corpus.files_mapped"], 4, "2 files × 2 opens");
        assert_eq!(telemetry.counters["corpus.index_builds"], 2);
        assert_eq!(telemetry.counters["corpus.index_hits"], 2);
        assert!(telemetry.counters["ingest.spilled_keys"] > 0);
        assert!(telemetry.counters["ingest.spill_bytes"] > 0);
        (corpus, traces)
    };
    assert_eq!(corpus.total_traces(), traces.len() as u64);
    std::fs::remove_dir_all(&dir).ok();
}
