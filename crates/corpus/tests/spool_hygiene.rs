//! Spool hygiene regressions: `Corpus::open` must set aside (not fail
//! on) the file shapes a live spool directory exhibits — zero-length
//! files scamper just created and files whose last record is still
//! being written — and a kill mid-index-write must never leave a
//! corrupt `.lpridx` that poisons the next run.

use lpr_corpus::{Corpus, FileSkipReason, RecordIndex};
use std::net::Ipv4Addr;
use std::path::PathBuf;
use warts::SkipReason;

fn ip(a: u8, o: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, a, 0, o)
}

fn workload() -> Vec<lpr_core::trace::Trace> {
    use lpr_core::prelude::*;
    use lpr_core::trace::Hop;
    let mut traces = Vec::new();
    for i in 0..20u32 {
        let dst = Ipv4Addr::new(192, 0, 2, 10 + i as u8);
        let mut t = Trace::new(Ipv4Addr::new(203, 0, 113, 5), dst);
        t.push_hop(Hop::responsive(1, ip(1, 1)));
        t.push_hop(Hop::labelled(2, ip(1, 2), &[Lse::transit(100 + i % 3, 254)]));
        t.push_hop(Hop::labelled(3, ip(1, 3), &[Lse::transit(200 + i % 3, 253)]));
        t.push_hop(Hop::responsive(4, ip(1, 9)));
        t.push_hop(Hop::responsive(5, dst));
        t.reached = true;
        traces.push(t);
    }
    traces
}

fn tmp(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("lpr-spool-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn empty_and_still_growing_files_are_skipped_not_fatal() {
    let dir = tmp("skip");
    let paths = lpr_corpus::write_corpus_files(&dir, "cycle", &workload(), 1).unwrap();
    let valid = paths[0].clone();
    let valid_bytes = std::fs::read(&valid).unwrap();

    // An empty spool file: created, nothing written yet.
    let empty = dir.join("empty.warts");
    std::fs::write(&empty, b"").unwrap();

    // A file whose final record's declared body overruns EOF — the
    // shape of a warts file mid-append.
    let growing = dir.join("growing.warts");
    let mut half = valid_bytes.clone();
    half.extend_from_slice(&warts::WARTS_MAGIC.to_be_bytes());
    half.extend_from_slice(&6u16.to_be_bytes()); // record type
    half.extend_from_slice(&512u32.to_be_bytes()); // declared body length...
    half.extend_from_slice(&[0u8; 16]); // ...but only 16 bytes present
    std::fs::write(&growing, &half).unwrap();

    // A file cut off inside the 8-byte record header itself.
    let header = dir.join("header.warts");
    let mut stub = valid_bytes.clone();
    stub.extend_from_slice(&warts::WARTS_MAGIC.to_be_bytes()[..2]);
    stub.push(0);
    std::fs::write(&header, &stub).unwrap();

    let rec = lpr_obs::Recorder::new("spool-open");
    let corpus = Corpus::open_with(
        &[empty.clone(), growing.clone(), header.clone(), valid.clone()],
        true,
        Some(&rec),
    )
    .unwrap();

    // The valid file opens normally; the rest are set aside with
    // structured reasons, in input order.
    assert_eq!(corpus.files.len(), 1);
    assert_eq!(corpus.files[0].path, valid);
    assert_eq!(corpus.total_traces(), 20);
    assert_eq!(corpus.skipped_files.len(), 3);
    assert_eq!(corpus.skipped_files[0].path, empty);
    assert_eq!(corpus.skipped_files[0].reason, FileSkipReason::Empty);
    assert_eq!(corpus.skipped_files[1].path, growing);
    assert_eq!(
        corpus.skipped_files[1].reason,
        FileSkipReason::StillGrowing(SkipReason::TruncatedBody)
    );
    assert_eq!(corpus.skipped_files[2].path, header);
    assert_eq!(
        corpus.skipped_files[2].reason,
        FileSkipReason::StillGrowing(SkipReason::TruncatedHeader)
    );
    assert_eq!(corpus.skipped_files[1].reason.to_string(), "still_growing(truncated_body)");

    let telemetry = rec.finish();
    assert_eq!(telemetry.counters["corpus.files_skipped"], 3);
    assert_eq!(telemetry.counters["corpus.files_mapped"], 1, "skipped files don't count");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mid_file_corruption_is_not_mistaken_for_growth() {
    // Garbage in the middle of the file is corruption (per-record skip
    // tallies), not growth: the file must still open.
    let dir = tmp("midfile");
    let paths = lpr_corpus::write_corpus_files(&dir, "cycle", &workload(), 1).unwrap();
    let mut bytes = std::fs::read(&paths[0]).unwrap();
    let mid = bytes.len() / 2;
    for b in &mut bytes[mid..mid + 9] {
        *b ^= 0xA5;
    }
    let corrupt = dir.join("corrupt.warts");
    std::fs::write(&corrupt, &bytes).unwrap();

    let corpus = Corpus::open(std::slice::from_ref(&corrupt)).unwrap();
    assert!(corpus.skipped_files.is_empty(), "mid-file damage is not still-growing");
    assert_eq!(corpus.files.len(), 1);
    assert!(corpus.decode_report().skipped_total() > 0, "damage shows up as record skips");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_mid_write_index_is_rebuilt_silently_and_leftovers_swept() {
    let dir = tmp("killed");
    let paths = lpr_corpus::write_corpus_files(&dir, "cycle", &workload(), 1).unwrap();
    let file = paths[0].clone();

    // First open builds and caches the index.
    drop(Corpus::open(std::slice::from_ref(&file)).unwrap());
    let cache = RecordIndex::cache_path(&file);
    assert!(cache.exists());

    // Simulate a kill mid-write: truncate the cache to half and leave
    // an orphaned temp file from the interrupted atomic-rename write.
    let cached = std::fs::read(&cache).unwrap();
    std::fs::write(&cache, &cached[..cached.len() / 2]).unwrap();
    let orphan = RecordIndex::tmp_cache_path(&file);
    std::fs::write(&orphan, b"partial index write").unwrap();

    // The startup sweep clears the orphan but leaves the (named-valid)
    // cache file for the staleness check to judge.
    let rec = lpr_obs::Recorder::new("sweep");
    let swept = lpr_corpus::sweep_stale(&dir, Some(&rec)).unwrap();
    assert_eq!(swept, vec![orphan.clone()]);
    assert!(!orphan.exists());

    // Reopening rebuilds the index silently — no error, full decode.
    let corpus = Corpus::open_with(std::slice::from_ref(&file), true, Some(&rec)).unwrap();
    assert_eq!(corpus.total_traces(), 20);
    let telemetry = rec.finish();
    assert_eq!(telemetry.counters["corpus.index_builds"], 1, "truncated cache → rebuild");
    assert_eq!(telemetry.counters["corpus.index_hits"], 0);
    assert_eq!(telemetry.counters["corpus.index.swept"], 1);

    // The rebuild healed the cache: next open is a clean hit.
    let rec2 = lpr_obs::Recorder::new("reopen");
    drop(Corpus::open_with(std::slice::from_ref(&file), true, Some(&rec2)).unwrap());
    assert_eq!(rec2.finish().counters["corpus.index_hits"], 1);
    std::fs::remove_dir_all(&dir).ok();
}
