//! Record-index robustness under corruption (ISSUE 7 satellite):
//! `lpr-chaos` smashes magics, flips bits, truncates and inflates
//! bodies across hundreds of seeded cases; the index build must never
//! panic, must resynchronize exactly like the sequential lenient
//! decoder (same per-reason skip tallies, same resync byte count), and
//! an indexed range decode against the preloaded dictionary must
//! reproduce the sequential record stream record for record.

use lpr_chaos::corrupt_warts_bytes;
use lpr_core::label::Lse;
use proptest::prelude::*;
use std::net::Ipv4Addr;
use warts::{
    decode_record_body, AddrTableReader, HopRecord, IcmpExt, Record, SkipReason, TraceRecord,
    WartsStreamReader, WartsWriter,
};

fn a(o: u8) -> warts::Addr {
    warts::Addr::V4(Ipv4Addr::new(10, 0, 0, o))
}

/// A realistic stream: list, cycle, MPLS-labelled traces sharing
/// dictionary addresses, cycle stop.
fn sample_stream() -> Vec<u8> {
    let mut w = WartsWriter::new();
    let list = w.list(1, "chaos");
    let cycle = w.cycle_start(list, 1, 0);
    for i in 0..8u8 {
        let mut t = TraceRecord::new(a(1), a(200 + i % 8));
        let mut labelled = HopRecord::reply(2, a(20 + i), 900);
        labelled.icmp_exts = vec![IcmpExt::mpls(
            &[Lse::transit(1000 + i as u32, 254), Lse::transit(7, 253)].into_iter().collect(),
        )];
        t.hops = vec![
            HopRecord::reply(1, a(10 + i), 500),
            labelled,
            HopRecord::reply(3, a(200 + i % 8), 1500),
        ];
        w.trace(&t).unwrap();
    }
    w.cycle_stop(cycle, 8);
    w.into_bytes()
}

/// Sequential lenient decode: the records plus the reader's final skip
/// and resync accounting.
fn sequential_decode(bytes: &[u8]) -> (Vec<Record>, Vec<(SkipReason, u64)>, u64) {
    let mut r = WartsStreamReader::new(bytes).lenient().elide_unsupported_bodies();
    let mut records = Vec::new();
    while let Some(rec) = r.next_record().expect("lenient over bytes cannot error") {
        records.push(rec);
    }
    let skips = r.skip_counts().iter().map(|(&k, &v)| (k, v)).collect();
    (records, skips, r.resync_bytes())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Corrupted corpora: index build never panics and its accounting
    /// IS the sequential lenient decoder's.
    #[test]
    fn index_build_matches_sequential_lenient_decode(
        seed in any::<u64>(),
        rate in 0.01f64..0.9,
    ) {
        let (bytes, _) = corrupt_warts_bytes(&sample_stream(), seed, rate);
        let index = lpr_corpus::RecordIndex::build(&bytes);
        let (records, skips, resync) = sequential_decode(&bytes);

        prop_assert_eq!(index.records.len(), records.len());
        prop_assert_eq!(
            index.skipped().into_iter().collect::<Vec<_>>(),
            skips,
            "per-reason skip tallies must match the sequential decoder"
        );
        prop_assert_eq!(index.resync_bytes, resync);
        let traces =
            records.iter().filter(|r| matches!(r, Record::Trace(_))).count() as u64;
        prop_assert_eq!(index.traces, traces);
    }

    /// Indexed range decode (full-dictionary preload) reproduces the
    /// sequential record stream exactly, from any range start.
    #[test]
    fn indexed_decode_reproduces_sequential_records(
        seed in any::<u64>(),
        rate in 0.01f64..0.6,
    ) {
        let (bytes, _) = corrupt_warts_bytes(&sample_stream(), seed, rate);
        let index = lpr_corpus::RecordIndex::build(&bytes);
        let (records, _, _) = sequential_decode(&bytes);

        // Decode each indexed record independently, as a range shard
        // would: fresh reader state per record, full dictionary
        // preloaded.
        for (span, expect) in index.records.iter().zip(&records) {
            let start = span.offset as usize + 8;
            let body = &bytes[start..start + span.body_len as usize];
            let mut addrs = AddrTableReader::from_table(index.addr_table.clone());
            let got = decode_record_body(span.record_type, body, &mut addrs)
                .expect("indexed records decoded once already");
            prop_assert_eq!(&got, expect);
        }
    }

    /// Serialization survives corruption end-to-end: whatever the scan
    /// produced roundtrips through the cache encoding.
    #[test]
    fn index_serialization_roundtrips_after_corruption(
        seed in any::<u64>(),
        rate in 0.05f64..0.9,
    ) {
        let (bytes, _) = corrupt_warts_bytes(&sample_stream(), seed, rate);
        let index = lpr_corpus::RecordIndex::build(&bytes);
        let restored = lpr_corpus::RecordIndex::from_bytes(&index.to_bytes()).unwrap();
        prop_assert_eq!(restored, index);
    }
}
