//! Window-eviction equivalence: `IngestState::evict_before(cycle)`
//! followed by re-merging the surviving cycles must be byte-identical
//! to rebuilding the state from scratch over only the surviving
//! traces — at every ingest thread count.
//!
//! This is the contract `lpr serve`'s reconcile loop leans on: aging a
//! cycle out of the windowed state is *exactly* a from-scratch ingest
//! of the remaining window, without paying for one.

use lpr_core::lsp::Asn;
use lpr_core::pipeline::{IngestState, Pipeline};
use lpr_core::prelude::*;
use lpr_core::stream::CycleAccumulator;
use lpr_core::trace::Hop;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn ip(a: u8, o: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, a, 0, o)
}

fn mapper(addr: Ipv4Addr) -> Option<Asn> {
    let o = addr.octets();
    match o[0] {
        10 => Some(Asn(o[1] as u32)),
        192 => Some(Asn(100)),
        198 => Some(Asn(101)),
        _ => None,
    }
}

/// A trace crossing AS`asn`'s two-LSR tunnel towards `dst`; `broken`
/// duplicates a reply so the trace is quarantined, exercising the
/// degraded accounting through eviction too.
fn mpls_trace(asn: u8, dst_octet: u8, label: u32, broken: bool) -> Trace {
    let dst = if dst_octet.is_multiple_of(2) {
        Ipv4Addr::new(192, 0, 2, dst_octet)
    } else {
        Ipv4Addr::new(198, 51, 100, dst_octet)
    };
    let mut t = Trace::new(Ipv4Addr::new(203, 0, 113, 5), dst);
    t.push_hop(Hop::responsive(1, ip(asn, 1)));
    t.push_hop(Hop::labelled(2, ip(asn, 2), &[Lse::transit(label, 254)]));
    t.push_hop(Hop::labelled(3, ip(asn, 3), &[Lse::transit(label + 100, 253)]));
    t.push_hop(Hop::responsive(4, ip(asn, 9)));
    t.push_hop(Hop::responsive(5, dst));
    t.reached = true;
    if broken {
        t.hops.push(t.hops[2].clone());
    }
    t
}

/// One cycle's worth of traces, derived deterministically from the
/// cycle's spec.
fn cycle_traces(spec: &CycleSpec) -> Vec<Trace> {
    let mut traces = Vec::new();
    for i in 0..spec.traces {
        let asn = 1 + ((spec.seed + i as u64) % 5) as u8;
        let dst = 10 + ((spec.seed / 3 + i as u64) % 40) as u8;
        let label = 100 + ((spec.seed + 7 * i as u64) % 9) as u32;
        let broken = spec.break_every != 0 && i % spec.break_every == 0;
        traces.push(mpls_trace(asn, dst, label, broken));
    }
    traces
}

#[derive(Clone, Debug)]
struct CycleSpec {
    seed: u64,
    traces: usize,
    break_every: usize,
}

/// Ingests one cycle's traces at the given thread count, producing the
/// tagged [`IngestState`] the reconcile loop would merge. Threads > 1
/// shard the traces and merge in shard order (the same discipline
/// `Pipeline::run_par` follows).
fn ingest_cycle(traces: &[Trace], cycle: u64, threads: usize) -> IngestState {
    let mut state = IngestState::default();
    if threads <= 1 {
        let mut acc = CycleAccumulator::new(&mapper);
        for t in traces {
            acc.push_trace(t);
        }
        state = acc.into_state();
    } else {
        let run = lpr_par::map_shards(
            traces,
            lpr_par::ShardOptions::new(threads),
            |_, shard| {
                let mut acc = CycleAccumulator::new(&mapper);
                for t in shard {
                    acc.push_trace(t);
                }
                acc.into_state()
            },
        );
        for shard_state in run.outputs {
            state.merge(shard_state);
        }
    }
    state.tag_cycle(cycle);
    state
}

/// Zeroes the stopwatch fields: extraction/attribution times are wall
/// measurements and legitimately differ between two ingests of the
/// same traces; everything else must be byte-identical.
fn detimed(state: &IngestState) -> IngestState {
    let mut s = state.clone();
    s.extraction_us = 0;
    s.attribution_us = 0;
    for seg in &mut s.segments {
        seg.extraction_us = 0;
        seg.attribution_us = 0;
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn evict_then_remerge_equals_rebuild_from_scratch(
        seeds in proptest::collection::vec(0u64..10_000, 2..6),
        sizes in proptest::collection::vec(1usize..40, 2..6),
        cutoff in 0u64..6,
    ) {
        let n_cycles = seeds.len().min(sizes.len());
        let specs: Vec<CycleSpec> = (0..n_cycles)
            .map(|i| CycleSpec {
                seed: seeds[i],
                traces: sizes[i],
                break_every: if seeds[i] % 3 == 0 { 4 } else { 0 },
            })
            .collect();
        let cutoff = cutoff.min(n_cycles as u64);

        for threads in [1usize, 2, 4, 8] {
            // Windowed path: merge every cycle, then age out the old ones.
            let mut windowed = IngestState::default();
            for (cycle, spec) in specs.iter().enumerate() {
                let traces = cycle_traces(spec);
                windowed.merge(ingest_cycle(&traces, cycle as u64, threads));
            }
            let evicted = windowed.evict_before(cutoff);
            prop_assert_eq!(
                evicted.len() as u64,
                cutoff,
                "one evicted segment per aged-out cycle (threads={})", threads
            );

            // From-scratch path: ingest only the surviving cycles.
            let mut rebuilt = IngestState::default();
            for (cycle, spec) in specs.iter().enumerate().skip(cutoff as usize) {
                let traces = cycle_traces(spec);
                rebuilt.merge(ingest_cycle(&traces, cycle as u64, threads));
            }

            // Byte-identical state (modulo stopwatch readings)...
            prop_assert_eq!(detimed(&windowed), detimed(&rebuilt), "threads={}", threads);

            // ...and byte-identical pipeline output downstream.
            let pipeline = Pipeline::default();
            let out_windowed = pipeline.finish_stages(
                windowed.clone(),
                &[],
                None,
                lpr_par::ShardOptions::new(threads),
            );
            let out_rebuilt = pipeline.finish_stages(
                rebuilt,
                &[],
                None,
                lpr_par::ShardOptions::new(1),
            );
            prop_assert_eq!(out_windowed, out_rebuilt, "threads={}", threads);
        }
    }

    #[test]
    fn eviction_accounting_reconciles(
        seeds in proptest::collection::vec(0u64..10_000, 3..5),
    ) {
        let specs: Vec<CycleSpec> = seeds
            .iter()
            .map(|&seed| CycleSpec { seed, traces: 12, break_every: 3 })
            .collect();
        let mut state = IngestState::default();
        for (cycle, spec) in specs.iter().enumerate() {
            state.merge(ingest_cycle(&cycle_traces(spec), cycle as u64, 2));
        }
        let total_before = state.traces_in;
        let evicted = state.evict_before(1);
        let gone: u64 = evicted.iter().map(|s| s.traces_in).sum();
        prop_assert_eq!(state.traces_in + gone, total_before);
        prop_assert_eq!(state.cycles(), (1..specs.len() as u64).collect::<Vec<_>>());
        // Kept + quarantined still reconciles with ingested post-evict.
        prop_assert_eq!(
            state.degraded.kept + state.degraded.quarantined.values().sum::<u64>(),
            state.traces_in
        );
    }
}
