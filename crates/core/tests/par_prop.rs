//! Property tests for the parallel pipeline front end (`lpr-par`
//! sharding): for *any* random trace set and *any* thread count the
//! parallel entry points must be byte-identical to their sequential
//! counterparts, and the per-worker telemetry rows must sum-reconcile
//! with the aggregate stage rows.

use lpr_core::filter::FilterStage;
use lpr_core::label::Lse;
use lpr_core::lsp::Asn;
use lpr_core::pipeline::Pipeline;
use lpr_core::trace::{Hop, Trace};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn ip(asn: u8, o: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, asn, 0, o)
}

fn mapper(addr: Ipv4Addr) -> Option<Asn> {
    let o = addr.octets();
    match o[0] {
        10 => Some(Asn(o[1] as u32)),
        192 => Some(Asn(100)),
        198 => Some(Asn(101)),
        _ => None,
    }
}

prop_compose! {
    /// One random trace. Most are complete MPLS crossings of a small AS
    /// pool (so IOTPs collide and TransitDiversity has work to do);
    /// some are label-free, truncated before the post-tunnel hop, or
    /// unreached, so every filter stage sees traffic.
    fn arb_trace()(
        asn in 1u8..=6,
        kind in 0u8..8,
        tunnel_len in 1usize..4,
        label in 16u32..22,
        lsr in 2u8..6,
        reached in any::<bool>(),
        dst_net in 0u8..2,
        dst_host in 0u8..12,
    ) -> Trace {
        let dst = if dst_net == 0 {
            Ipv4Addr::new(192, 0, 2, 10 + dst_host)
        } else {
            Ipv4Addr::new(198, 51, 100, 10 + dst_host)
        };
        let mut t = Trace::new(Ipv4Addr::new(203, 0, 113, 5), dst);
        t.push_hop(Hop::responsive(1, ip(asn, 1)));
        let mut ttl = 2u8;
        if kind != 0 {
            // An MPLS tunnel of `tunnel_len` LSRs.
            for i in 0..tunnel_len {
                t.push_hop(Hop::labelled(
                    ttl,
                    ip(asn, lsr + i as u8),
                    &[Lse::transit(label + i as u32, 254 - i as u8)],
                ));
                ttl += 1;
            }
        }
        if kind != 1 {
            // The post-tunnel hop; omitting it (kind == 1) feeds the
            // IncompleteLsp filter.
            t.push_hop(Hop::responsive(ttl, ip(asn, 9)));
            ttl += 1;
        }
        t.push_hop(Hop::responsive(ttl, dst));
        t.reached = reached || kind >= 2;
        t
    }
}

fn arb_traces() -> impl Strategy<Value = Vec<Trace>> {
    // Up to ~2.5 shards at the default 64-trace shard floor, so runs
    // cross the inline/parallel and single-/multi-shard boundaries.
    proptest::collection::vec(arb_trace(), 0..160)
}

fn remaining(out: &lpr_core::pipeline::PipelineOutput, stage: FilterStage) -> u64 {
    out.report.remaining.get(&stage).copied().unwrap_or(0) as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_run_matches_sequential_for_any_thread_count(
        primary in arb_traces(),
        future in arb_traces(),
    ) {
        let keys = Pipeline::snapshot_keys(&future);
        let pipeline = Pipeline::default();
        let seq = pipeline.run(&primary, &mapper, std::slice::from_ref(&keys));
        for threads in 1usize..=8 {
            let par =
                pipeline.run_par(&primary, &mapper, std::slice::from_ref(&keys), threads);
            prop_assert_eq!(&par, &seq, "threads={}", threads);
        }
    }

    #[test]
    fn parallel_snapshot_keys_match_sequential(traces in arb_traces()) {
        let seq = Pipeline::snapshot_keys(&traces);
        for threads in 1usize..=8 {
            prop_assert_eq!(
                Pipeline::snapshot_keys_par(&traces, threads),
                seq.clone(),
                "threads={}",
                threads
            );
        }
    }

    #[test]
    fn worker_telemetry_sum_reconciles_with_aggregates(
        primary in arb_traces(),
        future in arb_traces(),
        threads in 2usize..=8,
    ) {
        let keys = Pipeline::snapshot_keys(&future);
        let pipeline = Pipeline::default();
        let rec = lpr_obs::Recorder::new("par-prop");
        let out = pipeline.run_par_recorded(
            &primary,
            &mapper,
            std::slice::from_ref(&keys),
            threads,
            Some(&rec),
        );
        let telemetry = rec.finish();
        prop_assert_eq!(telemetry.threads, threads as u64);

        let ingest = telemetry.worker_stages("Ingest");
        prop_assert_eq!(
            ingest.iter().map(|s| s.input).sum::<u64>(),
            primary.len() as u64,
            "worker ingest inputs must cover every trace"
        );
        prop_assert_eq!(
            ingest.iter().map(|s| s.output).sum::<u64>(),
            remaining(&out, FilterStage::TargetAs),
            "worker ingest outputs must sum to the TargetAS survivors"
        );

        let persist = telemetry.worker_stages("Persistence");
        prop_assert_eq!(
            persist.iter().map(|s| s.input).sum::<u64>(),
            remaining(&out, FilterStage::TransitDiversity),
            "worker persistence inputs must sum to the TransitDiversity survivors"
        );
        prop_assert_eq!(
            persist.iter().map(|s| s.output).sum::<u64>(),
            remaining(&out, FilterStage::Persistence),
            "worker persistence outputs must sum to the Persistence survivors"
        );

        let classify = telemetry.worker_stages("Classification");
        prop_assert_eq!(
            classify.iter().map(|s| s.output).sum::<u64>(),
            out.iotps.len() as u64,
            "worker classification outputs must sum to the classified IOTPs"
        );
    }
}
