//! Property tests for the LPR classification: random IOTPs are checked
//! against a naive reference implementation of Algorithm 1, plus
//! structural invariances (branch order, duplicate observations).

use lpr_core::classify::{classify_iotp, Class, MonoFecKind};
use lpr_core::label::{Label, LabelStack, Lse};
use lpr_core::lsp::{Asn, Iotp, IotpKey, Lsp, LspHop};
use lpr_core::metrics::IotpMetrics;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

fn ip(o: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, o)
}

/// A random LSP: a short sequence of (address, label) hops drawn from
/// small pools so collisions (common IPs, equal labels) actually occur.
fn arb_lsp(dst_asn: u32) -> impl Strategy<Value = Lsp> {
    proptest::collection::vec((2u8..10, 16u32..24), 1..5).prop_map(move |hops| Lsp {
        asn: Asn(65000),
        ingress: ip(1),
        egress: ip(99),
        hops: hops
            .into_iter()
            .map(|(o, l)| LspHop::new(ip(o), LabelStack::from_entries(&[Lse::transit(l, 255)])))
            .collect(),
        dst: Ipv4Addr::new(192, 0, 2, 1),
        dst_asn: Some(Asn(dst_asn)),
    })
}

fn arb_iotp() -> impl Strategy<Value = Iotp> {
    proptest::collection::vec(arb_lsp(0), 1..6).prop_map(|mut lsps| {
        let key = IotpKey { asn: Asn(65000), ingress: ip(1), egress: ip(99) };
        let mut iotp = Iotp::new(key);
        for (i, l) in lsps.iter_mut().enumerate() {
            l.dst_asn = Some(Asn(100 + i as u32));
            iotp.absorb(l);
        }
        iotp
    })
}

/// Naive re-statement of Algorithm 1, written independently of the
/// library implementation.
fn reference_class(iotp: &Iotp) -> Class {
    if iotp.branches.len() <= 1 {
        return Class::MonoLsp;
    }
    // addr -> (branches crossing it, label sequences seen there)
    let mut by_addr: BTreeMap<Ipv4Addr, (BTreeSet<usize>, BTreeSet<Vec<Label>>)> =
        BTreeMap::new();
    for (bi, b) in iotp.branches.iter().enumerate() {
        for h in &b.hops {
            let e = by_addr.entry(h.addr).or_default();
            e.0.insert(bi);
            e.1.insert(h.labels());
        }
    }
    let common: Vec<_> = by_addr.values().filter(|(bs, _)| bs.len() >= 2).collect();
    if common.is_empty() {
        return Class::Unclassified;
    }
    if common.iter().any(|(_, labels)| labels.len() > 1) {
        return Class::MultiFec;
    }
    let sigs: BTreeSet<Vec<Vec<Label>>> = iotp
        .branches
        .iter()
        .map(|b| b.hops.iter().map(|h| h.labels()).collect())
        .collect();
    if sigs.len() <= 1 {
        Class::MonoFec(MonoFecKind::ParallelLinks)
    } else {
        Class::MonoFec(MonoFecKind::RoutersDisjoint)
    }
}

proptest! {
    #[test]
    fn classification_matches_reference(iotp in arb_iotp()) {
        prop_assert_eq!(classify_iotp(&iotp).class, reference_class(&iotp));
    }

    #[test]
    fn classification_is_branch_order_invariant(iotp in arb_iotp(), seed in any::<u64>()) {
        let base = classify_iotp(&iotp).class;
        let mut shuffled = iotp.clone();
        let mut s = seed;
        for i in (1..shuffled.branches.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            shuffled.branches.swap(i, j);
        }
        prop_assert_eq!(classify_iotp(&shuffled).class, base);
    }

    #[test]
    fn duplicate_observations_do_not_change_the_class(iotp in arb_iotp()) {
        let base = classify_iotp(&iotp).class;
        let mut doubled = iotp.clone();
        // Re-absorb each existing branch as a fresh observation.
        let branches = iotp.branches.clone();
        for b in &branches {
            let lsp = Lsp {
                asn: iotp.key.asn,
                ingress: iotp.key.ingress,
                egress: iotp.key.egress,
                hops: b.hops.clone(),
                dst: Ipv4Addr::new(192, 0, 2, 1),
                dst_asn: Some(Asn(9999)),
            };
            doubled.absorb(&lsp);
        }
        prop_assert_eq!(doubled.width(), iotp.width(), "absorb must dedupe");
        prop_assert_eq!(classify_iotp(&doubled).class, base);
    }

    #[test]
    fn metrics_invariants(iotp in arb_iotp()) {
        let m = IotpMetrics::of(&iotp);
        prop_assert_eq!(m.width, iotp.branches.len());
        prop_assert!(m.symmetry <= m.length);
        let max = iotp.branches.iter().map(|b| b.hops.len()).max().unwrap_or(0);
        let min = iotp.branches.iter().map(|b| b.hops.len()).min().unwrap_or(0);
        prop_assert_eq!(m.length, max);
        prop_assert_eq!(m.symmetry, max - min);
        // Mono-LSP <=> width 1.
        let cls = classify_iotp(&iotp).class;
        prop_assert_eq!(cls == Class::MonoLsp, m.width == 1);
    }

    #[test]
    fn alias_rescue_only_touches_unclassified(iotp in arb_iotp()) {
        let base = classify_iotp(&iotp).class;
        let rescued = lpr_core::alias::classify_with_alias_heuristic(&iotp).class;
        if base != Class::Unclassified {
            prop_assert_eq!(rescued, base);
        } else {
            prop_assert!(rescued != Class::MonoLsp, "rescue cannot invent Mono-LSP");
        }
    }
}
