//! LSP-tree analysis: the §5 extension that indexes LSPs through the
//! **Egress LER only**.
//!
//! LDP builds an LSP-*tree* per FEC: packets entering at different
//! Ingress LERs but leaving at the same Egress LER converge, and once
//! two branches meet at an LSR they carry the **same** label onwards
//! (per-router label scope). Grouping the observed LSPs by
//! `(AS, egress)` instead of `(AS, ingress, egress)` therefore:
//!
//! * indexes LSPs that per-IOTP analysis would drop (an ingress that
//!   reaches only one destination AS still contributes to the tree);
//! * gives a stronger Multi-FEC test: any LSR of the tree exposing two
//!   labels for the same egress cannot be running plain LDP;
//! * naturally generalises to DAGs when ECMP splits branches (the
//!   paper's closing remark).

use crate::classify::common_ip_labels;
use crate::label::Label;
use crate::lsp::{Asn, Iotp, IotpKey, Lsp};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// All observed LSPs of one AS converging on one Egress LER.
#[derive(Clone, Debug)]
pub struct FecTree {
    /// The AS owning the tree.
    pub asn: Asn,
    /// The Egress LER (the FEC's BGP next-hop).
    pub egress: Ipv4Addr,
    /// The distinct ingress LERs feeding the tree.
    pub ingresses: BTreeSet<Ipv4Addr>,
    /// The underlying per-ingress IOTP views (reusing the IOTP
    /// machinery for branch dedup).
    pub branches: Iotp,
}

/// Classification of a FEC tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeClass {
    /// Only one LSP feeds this egress: nothing to compare.
    SingleBranch,
    /// Every convergence LSR exposes a single label: consistent with
    /// one LDP LSP-tree (possibly a DAG under ECMP).
    ConsistentLdp,
    /// At least one LSR exposes several labels for the same egress:
    /// several FECs terminate there — RSVP-TE.
    MultiFec {
        /// The LSRs with conflicting labels.
        conflicting: Vec<Ipv4Addr>,
    },
    /// Branches never share a labelled LSR (PHP everywhere): no
    /// conclusion from the tree either.
    NoConvergence,
}

/// Builds the per-`(AS, egress)` trees from filtered LSPs.
///
/// Unlike [`crate::filter::transit_diversity`], no destination-AS
/// diversity is required: indexing by egress alone is exactly what
/// lets more LSPs participate (§5).
pub fn build_fec_trees(lsps: &[Lsp]) -> Vec<FecTree> {
    let mut grouped: BTreeMap<(Asn, Ipv4Addr), Vec<&Lsp>> = BTreeMap::new();
    for l in lsps {
        grouped.entry((l.asn, l.egress)).or_default().push(l);
    }
    grouped
        .into_iter()
        .map(|((asn, egress), lsps)| {
            // Branch bookkeeping reuses Iotp with a synthetic key: the
            // ingress slot is zeroed since the tree spans ingresses.
            let key = IotpKey { asn, ingress: Ipv4Addr::UNSPECIFIED, egress };
            let mut branches = Iotp::new(key);
            let mut ingresses = BTreeSet::new();
            for l in lsps {
                ingresses.insert(l.ingress);
                let mut tree_view = l.clone();
                tree_view.ingress = Ipv4Addr::UNSPECIFIED;
                branches.absorb(&tree_view);
            }
            FecTree { asn, egress, ingresses, branches }
        })
        .collect()
}

/// Classifies one tree.
pub fn classify_tree(tree: &FecTree) -> TreeClass {
    if tree.branches.width() <= 1 {
        return TreeClass::SingleBranch;
    }
    let common = common_ip_labels(&tree.branches);
    if common.is_empty() {
        return TreeClass::NoConvergence;
    }
    let conflicting: Vec<Ipv4Addr> = common
        .iter()
        .filter(|(_, labels)| labels.len() > 1)
        .map(|(addr, _)| *addr)
        .collect();
    if conflicting.is_empty() {
        TreeClass::ConsistentLdp
    } else {
        TreeClass::MultiFec { conflicting }
    }
}

/// The labels observed at one LSR across a whole tree (diagnostic
/// helper used by reports and tests).
pub fn labels_at(tree: &FecTree, lsr: Ipv4Addr) -> BTreeSet<Vec<Label>> {
    tree.branches
        .branches
        .iter()
        .flat_map(|b| b.hops.iter())
        .filter(|h| h.addr == lsr)
        .map(|h| h.labels())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{LabelStack, Lse};
    use crate::lsp::LspHop;

    fn ip(o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, o)
    }

    fn lsp(ingress: u8, hops: &[(u8, u32)], dst_asn: u32) -> Lsp {
        Lsp {
            asn: Asn(65000),
            ingress: ip(ingress),
            egress: ip(9),
            hops: hops
                .iter()
                .map(|&(o, l)| {
                    LspHop::new(ip(o), LabelStack::from_entries(&[Lse::transit(l, 255)]))
                })
                .collect(),
            dst: Ipv4Addr::new(192, 0, 2, 1),
            dst_asn: Some(Asn(dst_asn)),
        }
    }

    #[test]
    fn ldp_tree_from_two_ingresses_is_consistent() {
        // Two ingresses converge on LSR ip(5); LDP gives both branches
        // the same label there.
        let lsps =
            vec![lsp(1, &[(2, 100), (5, 400)], 100), lsp(3, &[(4, 200), (5, 400)], 100)];
        let trees = build_fec_trees(&lsps);
        assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        assert_eq!(tree.ingresses.len(), 2);
        assert_eq!(classify_tree(tree), TreeClass::ConsistentLdp);
        assert_eq!(labels_at(tree, ip(5)).len(), 1);
    }

    #[test]
    fn te_tree_shows_conflicting_labels() {
        let lsps =
            vec![lsp(1, &[(2, 100), (5, 400)], 100), lsp(3, &[(4, 200), (5, 401)], 100)];
        let trees = build_fec_trees(&lsps);
        match classify_tree(&trees[0]) {
            TreeClass::MultiFec { conflicting } => assert_eq!(conflicting, vec![ip(5)]),
            other => panic!("expected MultiFec, got {other:?}"),
        }
    }

    #[test]
    fn single_branch_tree() {
        let lsps = vec![lsp(1, &[(2, 100)], 100)];
        let trees = build_fec_trees(&lsps);
        assert_eq!(classify_tree(&trees[0]), TreeClass::SingleBranch);
    }

    #[test]
    fn php_only_tree_has_no_convergence() {
        let lsps = vec![lsp(1, &[(2, 100)], 100), lsp(3, &[(4, 200)], 100)];
        let trees = build_fec_trees(&lsps);
        assert_eq!(classify_tree(&trees[0]), TreeClass::NoConvergence);
    }

    #[test]
    fn trees_split_by_egress_and_as() {
        let mut a = lsp(1, &[(2, 100)], 100);
        let mut b = lsp(1, &[(2, 100)], 100);
        a.egress = ip(8);
        b.egress = ip(9);
        let mut c = lsp(1, &[(2, 100)], 100);
        c.asn = Asn(65001);
        let trees = build_fec_trees(&[a, b, c]);
        assert_eq!(trees.len(), 3);
    }

    #[test]
    fn tree_indexes_lsps_that_iotps_drop() {
        // Each ingress reaches only ONE destination AS: the
        // TransitDiversity filter would reject both IOTPs, yet the
        // egress-rooted tree still classifies them.
        let lsps =
            vec![lsp(1, &[(2, 100), (5, 400)], 100), lsp(3, &[(4, 200), (5, 400)], 101)];
        let keep = crate::filter::transit_diversity_keys(&lsps);
        assert!(keep.is_empty(), "per-IOTP analysis drops these LSPs");
        let trees = build_fec_trees(&lsps);
        assert_eq!(classify_tree(&trees[0]), TreeClass::ConsistentLdp);
    }
}
