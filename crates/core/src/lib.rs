//! # lpr-core — Label Pattern Recognition
//!
//! A faithful implementation of the **LPR** algorithm from
//! *"MPLS Under the Microscope: Revealing Actual Transit Path Diversity"*
//! (Vanaubel, Mérindol, Pansiot, Donnet — ACM IMC 2015).
//!
//! LPR is a *passive* analysis: it consumes traceroute data that carries
//! MPLS label-stack information (RFC 4950 ICMP extensions quoted by LSRs
//! along explicit tunnels) and, without any additional probing, classifies
//! the transit path diversity each ISP actually deploys.
//!
//! The pipeline mirrors Fig. 3 of the paper:
//!
//! ```text
//! traceroute dataset
//!       │ tunnel extraction (§2.3)          [`tunnel`]
//!       ▼
//! explicit MPLS LSPs
//!       │ filtering (§3.1)                  [`filter`]
//!       │   IncompleteLsp → IntraAs → TargetAs
//!       │   → TransitDiversity → Persistence
//!       ▼
//! cleaned IOTPs  (<Ingress LER; Egress LER> pairs)
//!       │ classification (§3.2, Algorithm 1) [`classify`]
//!       ▼
//! Mono-LSP │ Multi-FEC │ ECMP Mono-FEC (Parallel Links / Routers
//! Disjoint) │ Unclassified
//! ```
//!
//! Supporting modules: [`label`] (MPLS label-stack entries), [`trace`]
//! (the traceroute data model), [`lsp`] (LSPs and IOTPs), [`metrics`]
//! (length / width / symmetry, §4.3), [`report`] (per-AS per-cycle
//! aggregation used throughout §4), [`alias`] (the §5 penultimate-hop
//! alias heuristic that rescues `Unclassified` IOTPs), and [`hist`]
//! (tiny histogram utilities used by the evaluation harnesses).
//!
//! The crate is deliberately synchronous and allocation-light: the
//! workload is offline CPU-bound analysis. All inputs are IPv4, matching
//! the CAIDA Archipelago team-probing data the paper uses.
//!
//! ## Quick start
//!
//! ```
//! use lpr_core::prelude::*;
//! use std::net::Ipv4Addr;
//!
//! // A two-hop explicit tunnel seen by traceroute: the LSRs quote their
//! // label stack via RFC 4950.
//! let mk = |a: [u8; 4]| Ipv4Addr::from(a);
//! let mut trace = Trace::new(mk([1, 0, 0, 1]), mk([9, 9, 9, 9]));
//! trace.push_hop(Hop::responsive(1, mk([10, 0, 0, 1])));
//! trace.push_hop(Hop::labelled(2, mk([10, 0, 1, 1]), &[Lse::transit(100, 253)]));
//! trace.push_hop(Hop::labelled(3, mk([10, 0, 2, 1]), &[Lse::transit(200, 252)]));
//! trace.push_hop(Hop::responsive(4, mk([10, 0, 3, 1])));
//! trace.push_hop(Hop::responsive(5, mk([9, 9, 9, 9])));
//!
//! let tunnels = extract_tunnels(&trace);
//! assert_eq!(tunnels.len(), 1);
//! assert_eq!(tunnels[0].lsr_count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod aliasres;
pub mod classify;
pub mod filter;
pub mod fingerprint;
pub mod hist;
pub mod label;
pub mod lsp;
pub mod metrics;
pub mod par;
pub mod pipeline;
pub mod quarantine;
pub mod report;
pub mod reveal;
pub mod spill;
pub mod stream;
pub mod trace;
pub mod tree;
pub mod tunnel;

pub use aliasres::{infer_aliases, merge_router_level, AliasSets};
pub use classify::{classify_iotp, Class, Classification, MonoFecKind};
pub use filter::{FilterConfig, FilterReport, FilterStage};
pub use fingerprint::{infer_vendors, InferredVendor, VendorEvidence};
pub use label::{Label, LabelStack, Lse};
pub use lsp::{Asn, Iotp, IotpKey, Lsp, LspHop, LspKey};
pub use pipeline::{CycleSegment, IngestState, PersistenceWindow, Pipeline, PipelineOutput};
pub use reveal::{
    apply_revelations, detect_triggers, RevealedTunnel, RevelationStatus, RevelationSummary,
    Trigger, TriggerKind,
};
pub use spill::{KeySpiller, SpilledKeys};
pub use stream::CycleAccumulator;
pub use trace::{Hop, Trace};
pub use tree::{build_fec_trees, classify_tree, FecTree, TreeClass};
pub use tunnel::{extract_tunnels, extract_tunnels_into, RawTunnel, TunnelError};

/// Convenience re-exports for downstream users.
pub mod prelude {
    pub use crate::classify::{classify_iotp, Class, Classification, MonoFecKind};
    pub use crate::filter::{FilterConfig, FilterReport, FilterStage};
    pub use crate::label::{Label, LabelStack, Lse};
    pub use crate::lsp::{Asn, Iotp, IotpKey, Lsp, LspHop, LspKey};
    pub use crate::metrics::IotpMetrics;
    pub use crate::pipeline::{Pipeline, PipelineOutput};
    pub use crate::quarantine::{validate_trace, DegradedReport, QuarantineReason};
    pub use crate::report::{AsMapper, CycleReport};
    pub use crate::trace::{Hop, Trace};
    pub use crate::tunnel::{extract_tunnels, RawTunnel};
}
