//! TNT-style revelation of hidden and invisible MPLS tunnels.
//!
//! The paper's Unclassified class exists because PHP and
//! `ttl-propagate off` hide tunnel evidence from plain traceroute. TNT
//! (the paper's successor) notices the *artifacts* such tunnels leave
//! in ordinary traces and re-probes the suspect `<ingress, egress>`
//! pair with targeted DPR walks. This module holds the
//! measurement-side half of that loop:
//!
//! * [`detect_triggers`] scans one trace for the three artifact
//!   families — the duplicate-IP signature of an invisible tunnel
//!   (the egress answers two consecutive TTLs after a pipelined pop),
//!   the u-turn RTT quirk of an implicit tunnel (interior LSRs route
//!   their ICMP replies down the LSP to the egress first, inflating
//!   RTTs by a constant detour until the egress snaps back), and the
//!   opaque one-hop stack (a tail LSR quoting a single fresh LSE with
//!   TTL 255).
//! * [`RevealedTunnel`] carries the outcome of re-probing one
//!   candidate: either the revealed interior paths or an explicitly
//!   enumerated [`RevelationStatus`] cause for why revelation was
//!   impossible — the oracle property test forbids silent misses.
//! * [`apply_revelations`] is the classifier stage: it upgrades
//!   Unclassified (and diversity-hiding Mono-LSP) IOTPs with revealed
//!   evidence and materialises IOTPs for revealed tunnels that plain
//!   extraction never saw, emitting the `revelation.*` counters.
//!
//! The probing half (running the DPR walks) lives in `netsim`, which
//! owns the simulated dataplane.

use crate::classify::{Class, Classification, MonoFecKind};
use crate::label::LabelStack;
use crate::lsp::{Asn, Branch, Iotp, IotpKey, LspHop};
use crate::pipeline::PipelineOutput;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Minimum RTT jump (µs) between consecutive responsive hops read as a
/// tunnel *entry* by the u-turn detector. The simulator's per-hop RTT
/// grows by 1500 µs ± 900 µs jitter, so ordinary deltas stay under
/// 2400 µs while the 3000 µs u-turn detour pushes entry deltas past
/// 3600 µs — this threshold sits exactly on that gap.
pub const UTURN_ENTRY_JUMP_US: u32 = 3600;

/// The artifact families that trigger tunnel revelation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TriggerKind {
    /// The same address answered two consecutive TTLs (and is not the
    /// destination): the signature of an invisible tunnel whose egress
    /// also answers the TTL that died inside the tunnel.
    DupIp,
    /// A hop quoted a single label stack entry with a fresh (255) LSE
    /// TTL: an opaque tunnel's tail LSR, quoting the label it received
    /// without the decrements TTL propagation would have left.
    OpaqueStack,
    /// An RTT step up of at least [`UTURN_ENTRY_JUMP_US`] followed by a
    /// later RTT drop across unlabelled hops: implicit-tunnel interior
    /// LSRs detour their replies via the egress (the u-turn), the
    /// egress itself does not.
    Uturn,
}

impl TriggerKind {
    /// Counter name of this trigger family
    /// (`revelation.trigger.<kind>`).
    pub fn counter_name(&self) -> &'static str {
        match self {
            TriggerKind::DupIp => lpr_obs::names::REVELATION_TRIGGER_DUP_IP,
            TriggerKind::OpaqueStack => lpr_obs::names::REVELATION_TRIGGER_OPAQUE,
            TriggerKind::Uturn => lpr_obs::names::REVELATION_TRIGGER_UTURN,
        }
    }

    /// Short display name (`dup_ip` / `opaque` / `uturn`).
    pub fn name(&self) -> &'static str {
        match self {
            TriggerKind::DupIp => "dup_ip",
            TriggerKind::OpaqueStack => "opaque",
            TriggerKind::Uturn => "uturn",
        }
    }
}

/// One revelation trigger: an artifact observed in a trace, pointing
/// at a candidate hidden tunnel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Trigger {
    /// Which artifact family fired.
    pub kind: TriggerKind,
    /// Vantage point of the trace the artifact appeared in (DPR
    /// re-probes launch from here).
    pub vp: Ipv4Addr,
    /// Candidate tunnel ingress (the hop preceding the artifact).
    pub ingress: Ipv4Addr,
    /// Candidate tunnel egress (the artifact's convergence address).
    pub egress: Ipv4Addr,
}

/// Scans one trace for revelation triggers, in hop order.
///
/// Each trigger needs its *ingress* candidate (the responsive hop at
/// the preceding TTL) to anchor the re-probe; artifacts whose
/// neighbouring evidence went anonymous yield no trigger — the oracle
/// attributes those misses to anonymous evidence, not to detection.
pub fn detect_triggers(trace: &crate::trace::Trace) -> Vec<Trigger> {
    let hops = &trace.hops;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < hops.len() {
        let (prev, cur) = (&hops[i], &hops[i + 1]);
        if cur.probe_ttl != prev.probe_ttl + 1 {
            i += 1;
            continue;
        }
        let (Some(prev_addr), Some(cur_addr)) = (prev.addr, cur.addr) else {
            i += 1;
            continue;
        };
        // Duplicate IP: the egress answered both the TTL that died
        // inside the invisible tunnel and its own.
        if prev_addr == cur_addr && cur_addr != trace.dst && cur.stack.is_empty() {
            if let Some(ingress) = hops[..i]
                .iter()
                .rev()
                .find(|h| h.addr.is_some_and(|a| a != cur_addr))
                .and_then(|h| h.addr)
            {
                out.push(Trigger {
                    kind: TriggerKind::DupIp,
                    vp: trace.src,
                    ingress,
                    egress: cur_addr,
                });
            }
            // Skip past the pair so an N-fold repeat fires once.
            i += 2;
            continue;
        }
        // Opaque one-hop stack: `cur` quotes a single LSE whose TTL is
        // still 255 — TTL propagation would have decremented it.
        if cur.stack.depth() == 1
            && cur.stack.entries()[0].ttl == 255
            && !prev.is_labelled()
        {
            if let Some(next) = hops.get(i + 2) {
                if next.probe_ttl == cur.probe_ttl + 1 {
                    if let Some(egress) = next.addr {
                        out.push(Trigger {
                            kind: TriggerKind::OpaqueStack,
                            vp: trace.src,
                            ingress: prev_addr,
                            egress,
                        });
                        i += 2;
                        continue;
                    }
                }
            }
        }
        // U-turn: entry = an implausibly large RTT step between
        // unlabelled hops; the egress is the first later hop whose RTT
        // drops back (the detour constant vanishing).
        if prev.stack.is_empty()
            && cur.stack.is_empty()
            && cur.rtt_us >= prev.rtt_us + UTURN_ENTRY_JUMP_US
        {
            let mut k = i + 1;
            let mut egress = None;
            while k + 1 < hops.len() {
                let (a, b) = (&hops[k], &hops[k + 1]);
                if b.probe_ttl != a.probe_ttl + 1 || b.addr.is_none() || !b.stack.is_empty()
                {
                    break;
                }
                if b.rtt_us < a.rtt_us {
                    egress = b.addr;
                    break;
                }
                k += 1;
            }
            if let Some(egress) = egress {
                out.push(Trigger {
                    kind: TriggerKind::Uturn,
                    vp: trace.src,
                    ingress: prev_addr,
                    egress,
                });
                i = k + 2;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Why a triggered candidate could (or could not) be revealed. Every
/// non-`Revealed` variant is an explicitly enumerated non-revealable
/// cause: the oracle property test accepts these and nothing else.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RevelationStatus {
    /// DPR walks exposed at least one interior path.
    Revealed,
    /// The owning AS label-switches traffic towards its own
    /// infrastructure addresses too (`infra_in_fec`), so DPR probes
    /// ride the same tunnel and reveal nothing.
    InfraTunneled,
    /// Every DPR walk came back without a usable interior — anonymous
    /// hops, rate-limited replies, or an unresolvable egress.
    Unresponsive,
    /// No DPR walk crossed the candidate ingress: the re-probe towards
    /// the egress address entered the AS elsewhere.
    IngressOffPath,
    /// The revelation probe budget ran out before this candidate.
    BudgetExhausted,
}

impl RevelationStatus {
    /// Short display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            RevelationStatus::Revealed => "revealed",
            RevelationStatus::InfraTunneled => "infra_tunneled",
            RevelationStatus::Unresponsive => "unresponsive",
            RevelationStatus::IngressOffPath => "ingress_off_path",
            RevelationStatus::BudgetExhausted => "budget_exhausted",
        }
    }
}

/// The outcome of re-probing one triggered candidate tunnel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RevealedTunnel {
    /// AS owning the candidate pair.
    pub asn: Asn,
    /// Tunnel ingress address (the trigger's anchor hop).
    pub ingress: Ipv4Addr,
    /// Tunnel egress address (the trigger's convergence address).
    pub egress: Ipv4Addr,
    /// Which artifact family triggered the candidate.
    pub kind: TriggerKind,
    /// Distinct interior address sequences the DPR walks exposed,
    /// sorted; empty unless `status` is `Revealed` (a revealed empty
    /// path means the pair is adjacent — no hidden routers).
    pub paths: Vec<Vec<Ipv4Addr>>,
    /// Outcome or enumerated non-revealable cause.
    pub status: RevelationStatus,
    /// Probe packets the candidate's DPR walks spent.
    pub probes: u64,
}

impl RevealedTunnel {
    /// The IOTP this evidence upgrades.
    pub fn iotp_key(&self) -> IotpKey {
        IotpKey { asn: self.asn, ingress: self.ingress, egress: self.egress }
    }
}

/// What [`apply_revelations`] did to a pipeline output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RevelationSummary {
    /// Candidates considered (evidence entries).
    pub triggers: u64,
    /// DPR probe packets the evidence cost.
    pub probes: u64,
    /// Candidates that revealed at least one path.
    pub revealed: u64,
    /// Existing IOTPs whose class was upgraded.
    pub upgraded: u64,
    /// IOTPs newly materialised from revealed evidence.
    pub created: u64,
}

impl RevelationSummary {
    /// Total IOTPs whose classification now rests on revealed evidence
    /// (the `revelation.upgraded` counter).
    pub fn total_upgraded(&self) -> u64 {
        self.upgraded + self.created
    }
}

/// The class revealed evidence supports: revealed diversity carries no
/// labels, so it is IGP ECMP under one FEC — a single interior path is
/// a Mono-LSP, several are ECMP Mono-FEC across disjoint routers.
/// Multi-FEC is unreachable via revelation (distinct labels on a
/// common address can only be *observed*, never revealed label-less).
fn revealed_class(paths: &[Vec<Ipv4Addr>]) -> Class {
    if paths.len() > 1 {
        Class::MonoFec(MonoFecKind::RoutersDisjoint)
    } else {
        Class::MonoLsp
    }
}

/// The revelation classifier stage: upgrades `output` in place with
/// revealed evidence and returns what changed.
///
/// * An existing IOTP classified `Unclassified` whose key matches
///   revealed evidence is re-classified from the revealed paths.
/// * An existing `MonoLsp` IOTP (a single observed branch — the shape
///   an opaque tunnel's lone quirky hop produces) is upgraded when
///   revelation exposes *more* diversity than observation did.
/// * Revealed tunnels with no IOTP at all (invisible and implicit
///   tunnels leave no extractable labels) materialise a new IOTP with
///   one label-less branch per revealed path, keeping `output.iotps`
///   sorted by key.
///
/// Non-`Revealed` evidence changes nothing: under chaos the classifier
/// degrades Unclassified-ward rather than fabricating evidence.
pub fn apply_revelations(
    output: &mut PipelineOutput,
    evidence: &[RevealedTunnel],
    recorder: Option<&lpr_obs::Recorder>,
) -> RevelationSummary {
    let disabled = lpr_obs::Tracer::disabled();
    let tracer = recorder.map_or(&disabled, |r| r.tracer());
    let span = tracer.span("stage:Revelation");
    let mut summary = RevelationSummary {
        triggers: evidence.len() as u64,
        ..RevelationSummary::default()
    };
    for ev in evidence {
        summary.probes += ev.probes;
        if ev.status != RevelationStatus::Revealed {
            continue;
        }
        summary.revealed += 1;
        let key = ev.iotp_key();
        match output.iotps.binary_search_by(|(iotp, _)| iotp.key.cmp(&key)) {
            Ok(pos) => {
                let (iotp, class) = &mut output.iotps[pos];
                let upgraded = revealed_class(&ev.paths);
                let upgrade = match class.class {
                    Class::Unclassified => true,
                    // Observation saw one branch; revelation saw more.
                    Class::MonoLsp => {
                        upgraded != Class::MonoLsp && ev.paths.len() > iotp.width()
                    }
                    _ => false,
                };
                if upgrade {
                    *class = Classification {
                        class: upgraded,
                        common_ips: class.common_ips,
                        multi_label_ips: Vec::new(),
                    };
                    summary.upgraded += 1;
                }
            }
            Err(pos) => {
                let mut iotp = Iotp::new(key);
                for path in &ev.paths {
                    iotp.branches.push(Branch {
                        hops: path
                            .iter()
                            .map(|&a| LspHop::new(a, LabelStack::empty()))
                            .collect(),
                        dst_asns: BTreeSet::new(),
                        observations: 1,
                    });
                }
                let classification = Classification {
                    class: revealed_class(&ev.paths),
                    common_ips: 0,
                    multi_label_ips: Vec::new(),
                };
                output.iotps.insert(pos, (iotp, classification));
                summary.created += 1;
            }
        }
    }
    drop(span);
    if let Some(rec) = recorder {
        rec.counter(lpr_obs::names::REVELATION_TRIGGERS).add(summary.triggers);
        rec.counter(lpr_obs::names::REVELATION_PROBES).add(summary.probes);
        rec.counter(lpr_obs::names::REVELATION_UPGRADED).add(summary.total_upgraded());
        let mut by_kind: std::collections::BTreeMap<TriggerKind, u64> =
            std::collections::BTreeMap::new();
        for ev in evidence {
            *by_kind.entry(ev.kind).or_default() += 1;
        }
        for (kind, n) in by_kind {
            rec.counter(kind.counter_name()).add(n);
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{Label, Lse};
    use crate::quarantine::DegradedReport;
    use crate::trace::{Hop, Trace};
    use crate::filter::FilterReport;

    fn ip(o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, o)
    }

    fn hop_rtt(ttl: u8, addr: Ipv4Addr, rtt_us: u32) -> Hop {
        Hop { probe_ttl: ttl, addr: Some(addr), rtt_us, stack: LabelStack::empty() }
    }

    #[test]
    fn dup_ip_trigger_detected() {
        let mut t = Trace::new(ip(100), Ipv4Addr::new(192, 0, 2, 9));
        t.push_hop(Hop::responsive(1, ip(1)));
        t.push_hop(Hop::responsive(2, ip(5)));
        t.push_hop(Hop::responsive(3, ip(5)));
        t.push_hop(Hop::responsive(4, Ipv4Addr::new(192, 0, 2, 9)));
        t.reached = true;
        let triggers = detect_triggers(&t);
        assert_eq!(
            triggers,
            vec![Trigger {
                kind: TriggerKind::DupIp,
                vp: ip(100),
                ingress: ip(1),
                egress: ip(5),
            }]
        );
    }

    #[test]
    fn dup_ip_at_destination_is_not_a_trigger() {
        let dst = Ipv4Addr::new(192, 0, 2, 9);
        let mut t = Trace::new(ip(100), dst);
        t.push_hop(Hop::responsive(1, ip(1)));
        t.push_hop(Hop::responsive(2, dst));
        t.push_hop(Hop::responsive(3, dst));
        assert!(detect_triggers(&t).is_empty());
    }

    #[test]
    fn opaque_stack_trigger_detected() {
        let mut t = Trace::new(ip(100), Ipv4Addr::new(192, 0, 2, 9));
        t.push_hop(Hop::responsive(1, ip(1)));
        t.push_hop(Hop::labelled(2, ip(4), &[Lse::new(Label::new(300), 0, true, 255)]));
        t.push_hop(Hop::responsive(3, ip(9)));
        let triggers = detect_triggers(&t);
        assert_eq!(triggers.len(), 1);
        assert_eq!(triggers[0].kind, TriggerKind::OpaqueStack);
        assert_eq!(triggers[0].ingress, ip(1));
        assert_eq!(triggers[0].egress, ip(9));
    }

    #[test]
    fn normal_quoted_stack_is_not_opaque() {
        // Ordinary RFC 4950 quoting leaves a decremented LSE TTL.
        let mut t = Trace::new(ip(100), Ipv4Addr::new(192, 0, 2, 9));
        t.push_hop(Hop::responsive(1, ip(1)));
        t.push_hop(Hop::labelled(2, ip(4), &[Lse::new(Label::new(300), 0, true, 1)]));
        t.push_hop(Hop::responsive(3, ip(9)));
        assert!(detect_triggers(&t).is_empty());
    }

    #[test]
    fn uturn_trigger_detected() {
        let mut t = Trace::new(ip(100), Ipv4Addr::new(192, 0, 2, 9));
        t.push_hop(hop_rtt(1, ip(1), 1500));
        // Interior hops: +1500 per TTL plus the 3000 µs detour.
        t.push_hop(hop_rtt(2, ip(4), 6000));
        t.push_hop(hop_rtt(3, ip(5), 7500));
        // Egress: detour gone, RTT drops.
        t.push_hop(hop_rtt(4, ip(9), 6000));
        let triggers = detect_triggers(&t);
        assert_eq!(triggers.len(), 1);
        assert_eq!(triggers[0].kind, TriggerKind::Uturn);
        assert_eq!(triggers[0].ingress, ip(1));
        assert_eq!(triggers[0].egress, ip(9));
    }

    #[test]
    fn plain_rtt_growth_is_not_a_uturn() {
        let mut t = Trace::new(ip(100), Ipv4Addr::new(192, 0, 2, 9));
        for ttl in 1..=6u8 {
            t.push_hop(hop_rtt(ttl, ip(ttl), ttl as u32 * 1500 + (ttl as u32 * 37) % 900));
        }
        assert!(detect_triggers(&t).is_empty());
    }

    #[test]
    fn anonymous_neighbours_suppress_triggers() {
        let mut t = Trace::new(ip(100), Ipv4Addr::new(192, 0, 2, 9));
        t.push_hop(Hop::anonymous(1));
        t.push_hop(Hop::responsive(2, ip(5)));
        t.push_hop(Hop::responsive(3, ip(5)));
        assert!(detect_triggers(&t).is_empty(), "no ingress anchor, no trigger");
    }

    fn empty_output() -> PipelineOutput {
        PipelineOutput {
            iotps: Vec::new(),
            report: FilterReport::default(),
            dynamic_ases: BTreeSet::new(),
            degraded: DegradedReport::default(),
        }
    }

    fn evidence(paths: &[&[u8]], status: RevelationStatus) -> RevealedTunnel {
        RevealedTunnel {
            asn: Asn(65000),
            ingress: ip(1),
            egress: ip(9),
            kind: TriggerKind::DupIp,
            paths: paths.iter().map(|p| p.iter().map(|&o| ip(o)).collect()).collect(),
            status,
            probes: 12,
        }
    }

    #[test]
    fn revealed_tunnel_without_iotp_is_created() {
        let mut out = empty_output();
        let summary = apply_revelations(
            &mut out,
            &[evidence(&[&[4], &[5]], RevelationStatus::Revealed)],
            None,
        );
        assert_eq!(summary.created, 1);
        assert_eq!(summary.upgraded, 0);
        assert_eq!(out.iotps.len(), 1);
        assert_eq!(out.iotps[0].1.class, Class::MonoFec(MonoFecKind::RoutersDisjoint));
        assert_eq!(out.iotps[0].0.width(), 2);
    }

    #[test]
    fn single_revealed_path_is_mono_lsp() {
        let mut out = empty_output();
        apply_revelations(&mut out, &[evidence(&[&[4]], RevelationStatus::Revealed)], None);
        assert_eq!(out.iotps[0].1.class, Class::MonoLsp);
    }

    #[test]
    fn unclassified_iotp_is_upgraded_in_place() {
        let mut out = empty_output();
        let key = IotpKey { asn: Asn(65000), ingress: ip(1), egress: ip(9) };
        let mut iotp = Iotp::new(key);
        for o in [4u8, 5] {
            iotp.branches.push(Branch {
                hops: vec![LspHop::new(ip(o), LabelStack::empty())],
                dst_asns: BTreeSet::new(),
                observations: 1,
            });
        }
        out.iotps.push((
            iotp,
            Classification {
                class: Class::Unclassified,
                common_ips: 0,
                multi_label_ips: Vec::new(),
            },
        ));
        let summary = apply_revelations(
            &mut out,
            &[evidence(&[&[4], &[5]], RevelationStatus::Revealed)],
            None,
        );
        assert_eq!(summary.upgraded, 1);
        assert_eq!(summary.created, 0);
        assert_eq!(out.iotps[0].1.class, Class::MonoFec(MonoFecKind::RoutersDisjoint));
    }

    #[test]
    fn unrevealed_evidence_changes_nothing() {
        for status in [
            RevelationStatus::InfraTunneled,
            RevelationStatus::Unresponsive,
            RevelationStatus::IngressOffPath,
            RevelationStatus::BudgetExhausted,
        ] {
            let mut out = empty_output();
            let summary = apply_revelations(&mut out, &[evidence(&[], status)], None);
            assert!(out.iotps.is_empty(), "{status:?} must not fabricate IOTPs");
            assert_eq!(summary.total_upgraded(), 0);
        }
    }

    #[test]
    fn created_iotps_keep_key_order() {
        let mut out = empty_output();
        let mut later = evidence(&[&[4]], RevelationStatus::Revealed);
        later.ingress = ip(200);
        let earlier = evidence(&[&[5]], RevelationStatus::Revealed);
        apply_revelations(&mut out, &[later, earlier], None);
        assert_eq!(out.iotps.len(), 2);
        assert!(out.iotps[0].0.key < out.iotps[1].0.key);
    }

    #[test]
    fn counters_reconcile_with_summary() {
        let rec = lpr_obs::Recorder::new("reveal");
        let mut out = empty_output();
        let summary = apply_revelations(
            &mut out,
            &[
                evidence(&[&[4]], RevelationStatus::Revealed),
                evidence(&[], RevelationStatus::Unresponsive),
            ],
            Some(&rec),
        );
        let telemetry = rec.finish();
        assert_eq!(telemetry.counter("revelation.triggers"), summary.triggers);
        assert_eq!(telemetry.counter("revelation.probes"), summary.probes);
        assert_eq!(telemetry.counter("revelation.upgraded"), summary.total_upgraded());
        assert_eq!(telemetry.counter("revelation.trigger.dup_ip"), 2);
    }
}
