//! Streaming ingestion for Internet-scale cycles.
//!
//! The paper's dataset holds ~14 million LSPs *per cycle*; holding every
//! raw trace in memory before running [`crate::pipeline::Pipeline`] is
//! wasteful when the per-LSP filters (IncompleteLsp, IntraAs, TargetAs)
//! can run trace by trace as a warts file is read. [`CycleAccumulator`]
//! does exactly that: push traces (or pre-extracted tunnels) one at a
//! time — only the surviving [`Lsp`]s are retained — then finish with
//! the aggregate stages (TransitDiversity, Persistence, classification).
//!
//! ```
//! use lpr_core::prelude::*;
//! use lpr_core::stream::CycleAccumulator;
//! # use lpr_core::lsp::Asn;
//! # use std::net::Ipv4Addr;
//! # let mapper = |addr: Ipv4Addr| -> Option<Asn> {
//! #     match addr.octets()[0] { 10 => Some(Asn(1)), 192 => Some(Asn(2)), _ => None }
//! # };
//! # let traces: Vec<Trace> = Vec::new();
//!
//! let mut acc = CycleAccumulator::new(&mapper);
//! for trace in &traces {
//!     acc.push_trace(trace); // e.g. while streaming a warts file
//! }
//! let out = acc.finish(&Pipeline::default(), &[]);
//! # assert_eq!(out.iotps.len(), 0);
//! ```

use crate::filter::{attribute_and_filter, AsMapper};
use crate::lsp::LspKey;
use crate::pipeline::{IngestState, Pipeline, PipelineOutput};
use crate::quarantine::validate_trace;
use crate::trace::Trace;
use crate::tunnel::{extract_tunnels_into, RawTunnel};
use std::collections::BTreeSet;

/// Incremental, bounded-memory front end of the LPR pipeline.
pub struct CycleAccumulator<'m> {
    mapper: &'m dyn AsMapper,
    state: IngestState,
    /// Scratch buffer for per-trace tunnel extraction, reused across
    /// [`CycleAccumulator::push_trace`] calls so the steady state
    /// allocates nothing per trace.
    scratch: Vec<RawTunnel>,
}

impl<'m> CycleAccumulator<'m> {
    /// Starts an empty cycle bound to an IP2AS mapper.
    pub fn new(mapper: &'m dyn AsMapper) -> Self {
        CycleAccumulator { mapper, state: IngestState::default(), scratch: Vec::new() }
    }

    /// Ingests one trace: validates it, extracts its explicit tunnels
    /// and runs the per-LSP filters immediately. Structurally broken
    /// traces are quarantined (counted on the eventual
    /// [`PipelineOutput::degraded`] report) instead of entering the
    /// pipeline.
    pub fn push_trace(&mut self, trace: &Trace) {
        let sw = lpr_obs::Stopwatch::start();
        self.state.traces_in += 1;
        if let Err(reason) = validate_trace(trace) {
            self.state.degraded.note(reason);
            self.state.extraction_us =
                self.state.extraction_us.saturating_add(sw.elapsed_us());
            return;
        }
        self.state.degraded.kept += 1;
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        extract_tunnels_into(trace, &mut scratch);
        self.state.extraction_us = self.state.extraction_us.saturating_add(sw.elapsed_us());
        self.push_tunnels(&scratch);
        self.scratch = scratch;
    }

    /// Ingests pre-extracted tunnels (e.g. from a custom warts reader
    /// loop).
    pub fn push_tunnels(&mut self, tunnels: &[RawTunnel]) {
        let sw = lpr_obs::Stopwatch::start();
        self.state.input += tunnels.len();
        let out = attribute_and_filter(tunnels, self.mapper);
        self.state.after_incomplete += out.after_incomplete;
        self.state.after_intra_as += out.after_intra_as;
        self.state.lsps.extend(out.lsps);
        self.state.attribution_us = self.state.attribution_us.saturating_add(sw.elapsed_us());
    }

    /// LSPs retained so far (post per-LSP filters).
    pub fn retained(&self) -> usize {
        self.state.lsps.len()
    }

    /// Hands back the accumulated ingest state — an owned, `Send`-able
    /// value the parallel pipeline's workers return across thread
    /// boundaries (the accumulator itself borrows its mapper and
    /// cannot leave the worker).
    pub fn into_state(self) -> IngestState {
        self.state
    }

    /// Runs the aggregate stages and produces the same
    /// [`PipelineOutput`] a batch [`Pipeline::run`] would.
    pub fn finish(self, pipeline: &Pipeline, future_keys: &[BTreeSet<LspKey>]) -> PipelineOutput {
        self.finish_recorded(pipeline, future_keys, None)
    }

    /// [`CycleAccumulator::finish`] with instrumentation: the
    /// accumulated per-push extraction/attribution wall time and the
    /// aggregate stage timings land in `recorder`, with stage names and
    /// counts reconciling with the returned [`FilterReport`] exactly as
    /// in [`Pipeline::run_recorded`].
    pub fn finish_recorded(
        self,
        pipeline: &Pipeline,
        future_keys: &[BTreeSet<LspKey>],
        recorder: Option<&lpr_obs::Recorder>,
    ) -> PipelineOutput {
        pipeline.finish_stages(
            self.state,
            future_keys,
            recorder,
            lpr_par::ShardOptions::new(1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::FilterStage;
    use crate::label::Lse;
    use crate::lsp::Asn;
    use crate::trace::Hop;
    use std::net::Ipv4Addr;

    fn ip(a: u8, o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, a, 0, o)
    }

    fn mapper(addr: Ipv4Addr) -> Option<Asn> {
        let o = addr.octets();
        match o[0] {
            10 => Some(Asn(o[1] as u32)),
            192 => Some(Asn(100)),
            198 => Some(Asn(101)),
            _ => None,
        }
    }

    fn mpls_trace(dst: Ipv4Addr, labels: [u32; 2], lsrs: [u8; 2]) -> Trace {
        let mut t = Trace::new(Ipv4Addr::new(203, 0, 113, 5), dst);
        t.push_hop(Hop::responsive(1, ip(1, 1)));
        t.push_hop(Hop::labelled(2, ip(1, lsrs[0]), &[Lse::transit(labels[0], 254)]));
        t.push_hop(Hop::labelled(3, ip(1, lsrs[1]), &[Lse::transit(labels[1], 253)]));
        t.push_hop(Hop::responsive(4, ip(1, 9)));
        t.push_hop(Hop::responsive(5, dst));
        t.reached = true;
        t
    }

    fn sample_traces() -> Vec<Trace> {
        vec![
            mpls_trace(Ipv4Addr::new(192, 0, 2, 7), [100, 200], [2, 3]),
            mpls_trace(Ipv4Addr::new(198, 51, 100, 7), [101, 201], [2, 3]),
            mpls_trace(Ipv4Addr::new(192, 0, 2, 9), [100, 200], [2, 3]),
        ]
    }

    #[test]
    fn streaming_equals_batch() {
        let traces = sample_traces();
        let keys = Pipeline::snapshot_keys(&traces);
        let pipeline = Pipeline::default();

        let batch = pipeline.run(&traces, &mapper, std::slice::from_ref(&keys));

        let mut acc = CycleAccumulator::new(&mapper);
        for t in &traces {
            acc.push_trace(t);
        }
        let streamed = acc.finish(&pipeline, std::slice::from_ref(&keys));

        assert_eq!(streamed.report, batch.report);
        assert_eq!(streamed.class_counts(), batch.class_counts());
        assert_eq!(streamed.dynamic_ases, batch.dynamic_ases);
        assert_eq!(streamed.iotps.len(), batch.iotps.len());
        for ((ia, ca), (ib, cb)) in streamed.iotps.iter().zip(&batch.iotps) {
            assert_eq!(ia.key, ib.key);
            assert_eq!(ca, cb);
        }
    }

    #[test]
    fn memory_is_bounded_by_surviving_lsps() {
        // Traces whose tunnels fail the per-LSP filters retain nothing.
        let mut t = Trace::new(Ipv4Addr::new(203, 0, 113, 5), ip(1, 200));
        t.push_hop(Hop::responsive(1, ip(1, 1)));
        t.push_hop(Hop::labelled(2, ip(1, 2), &[Lse::transit(100, 254)]));
        t.push_hop(Hop::responsive(3, ip(1, 9)));
        t.push_hop(Hop::responsive(4, ip(1, 200))); // dst inside the AS
        t.reached = true;

        let mut acc = CycleAccumulator::new(&mapper);
        for _ in 0..100 {
            acc.push_trace(&t);
        }
        assert_eq!(acc.retained(), 0, "TargetAS-failing LSPs must not accumulate");
        let out = acc.finish(&Pipeline::default(), &[]);
        assert_eq!(out.report.input, 100);
        assert!(out.iotps.is_empty());
    }

    #[test]
    fn streaming_telemetry_reconciles_with_report() {
        let traces = sample_traces();
        let keys = Pipeline::snapshot_keys(&traces);
        let rec = lpr_obs::Recorder::new("stream");
        let mut acc = CycleAccumulator::new(&mapper);
        for t in &traces {
            acc.push_trace(t);
        }
        let out = acc.finish_recorded(&Pipeline::default(), &[keys], Some(&rec));
        let telemetry = rec.finish();

        let extraction = telemetry.stage("TunnelExtraction").unwrap();
        assert_eq!(extraction.input, traces.len() as u64);
        assert_eq!(extraction.output, out.report.input as u64);
        let mut input = out.report.input as u64;
        for stage in FilterStage::ALL {
            let s = telemetry.stage(stage.name()).unwrap_or_else(|| panic!("{}", stage.name()));
            assert_eq!(s.input, input, "{} input", stage.name());
            assert_eq!(s.output, out.report.remaining[&stage] as u64, "{} output", stage.name());
            input = s.output;
        }
        assert_eq!(telemetry.stage("Classification").unwrap().output, out.iotps.len() as u64);
    }

    #[test]
    fn streaming_respects_pipeline_options() {
        let traces = sample_traces();
        let pipeline = Pipeline { skip_transit_diversity: true, ..Pipeline::default() };
        let mut acc = CycleAccumulator::new(&mapper);
        for t in &traces {
            acc.push_trace(t);
        }
        let keys = Pipeline::snapshot_keys(&traces);
        let out = acc.finish(&pipeline, std::slice::from_ref(&keys));
        let batch = pipeline.run(&traces, &mapper, &[keys]);
        assert_eq!(out.report, batch.report, "full FilterReport must agree");
        assert_eq!(out, batch, "streaming and batch outputs must be identical");
    }
}
