//! Streaming ingestion for Internet-scale cycles.
//!
//! The paper's dataset holds ~14 million LSPs *per cycle*; holding every
//! raw trace in memory before running [`crate::pipeline::Pipeline`] is
//! wasteful when the per-LSP filters (IncompleteLsp, IntraAs, TargetAs)
//! can run trace by trace as a warts file is read. [`CycleAccumulator`]
//! does exactly that: push traces (or pre-extracted tunnels) one at a
//! time — only the surviving [`Lsp`]s are retained — then finish with
//! the aggregate stages (TransitDiversity, Persistence, classification).
//!
//! ```
//! use lpr_core::prelude::*;
//! use lpr_core::stream::CycleAccumulator;
//! # use lpr_core::lsp::Asn;
//! # use std::net::Ipv4Addr;
//! # let mapper = |addr: Ipv4Addr| -> Option<Asn> {
//! #     match addr.octets()[0] { 10 => Some(Asn(1)), 192 => Some(Asn(2)), _ => None }
//! # };
//! # let traces: Vec<Trace> = Vec::new();
//!
//! let mut acc = CycleAccumulator::new(&mapper);
//! for trace in &traces {
//!     acc.push_trace(trace); // e.g. while streaming a warts file
//! }
//! let out = acc.finish(&Pipeline::default(), &[]);
//! # assert_eq!(out.iotps.len(), 0);
//! ```

use crate::classify::classify_iotp;
use crate::filter::{
    attribute_and_filter, build_iotps, persistence, transit_diversity, AsMapper, FilterReport,
    FilterStage,
};
use crate::lsp::{Lsp, LspKey};
use crate::pipeline::{record_filter_stages, Pipeline, PipelineOutput};
use crate::trace::Trace;
use crate::tunnel::{extract_tunnels, RawTunnel};
use std::collections::{BTreeMap, BTreeSet};

/// Incremental, bounded-memory front end of the LPR pipeline.
pub struct CycleAccumulator<'m> {
    mapper: &'m dyn AsMapper,
    lsps: Vec<Lsp>,
    input: usize,
    after_incomplete: usize,
    after_intra_as: usize,
    traces_in: u64,
    extraction_us: u64,
    attribution_us: u64,
}

impl<'m> CycleAccumulator<'m> {
    /// Starts an empty cycle bound to an IP2AS mapper.
    pub fn new(mapper: &'m dyn AsMapper) -> Self {
        CycleAccumulator {
            mapper,
            lsps: Vec::new(),
            input: 0,
            after_incomplete: 0,
            after_intra_as: 0,
            traces_in: 0,
            extraction_us: 0,
            attribution_us: 0,
        }
    }

    /// Ingests one trace: extracts its explicit tunnels and runs the
    /// per-LSP filters immediately.
    pub fn push_trace(&mut self, trace: &Trace) {
        let sw = lpr_obs::Stopwatch::start();
        let tunnels = extract_tunnels(trace);
        self.traces_in += 1;
        self.extraction_us = self.extraction_us.saturating_add(sw.elapsed_us());
        self.push_tunnels(&tunnels);
    }

    /// Ingests pre-extracted tunnels (e.g. from a custom warts reader
    /// loop).
    pub fn push_tunnels(&mut self, tunnels: &[RawTunnel]) {
        let sw = lpr_obs::Stopwatch::start();
        self.input += tunnels.len();
        let out = attribute_and_filter(tunnels, self.mapper);
        self.after_incomplete += out.after_incomplete;
        self.after_intra_as += out.after_intra_as;
        self.lsps.extend(out.lsps);
        self.attribution_us = self.attribution_us.saturating_add(sw.elapsed_us());
    }

    /// LSPs retained so far (post per-LSP filters).
    pub fn retained(&self) -> usize {
        self.lsps.len()
    }

    /// Runs the aggregate stages and produces the same
    /// [`PipelineOutput`] a batch [`Pipeline::run`] would.
    pub fn finish(self, pipeline: &Pipeline, future_keys: &[BTreeSet<LspKey>]) -> PipelineOutput {
        self.finish_recorded(pipeline, future_keys, None)
    }

    /// [`CycleAccumulator::finish`] with instrumentation: the
    /// accumulated per-push extraction/attribution wall time and the
    /// aggregate stage timings land in `recorder`, with stage names and
    /// counts reconciling with the returned [`FilterReport`] exactly as
    /// in [`Pipeline::run_recorded`].
    pub fn finish_recorded(
        self,
        pipeline: &Pipeline,
        future_keys: &[BTreeSet<LspKey>],
        recorder: Option<&lpr_obs::Recorder>,
    ) -> PipelineOutput {
        let mut report = FilterReport { input: self.input, ..Default::default() };
        report.remaining.insert(FilterStage::IncompleteLsp, self.after_incomplete);
        report.remaining.insert(FilterStage::IntraAs, self.after_intra_as);
        report.remaining.insert(FilterStage::TargetAs, self.lsps.len());
        let mut timer = lpr_obs::StageTimer::start();

        let (keep, surviving) = if pipeline.skip_transit_diversity {
            let keep: BTreeSet<_> = self.lsps.iter().map(|l| l.iotp_key()).collect();
            let n = self.lsps.len();
            (keep, n)
        } else {
            transit_diversity(&self.lsps)
        };
        let transit_us = lpr_obs::time::duration_us(timer.lap("transit_diversity"));
        report.remaining.insert(FilterStage::TransitDiversity, surviving);
        let lsps: Vec<_> =
            self.lsps.into_iter().filter(|l| keep.contains(&l.iotp_key())).collect();

        let persisted = persistence(lsps, future_keys, &pipeline.config);
        let persistence_us = lpr_obs::time::duration_us(timer.lap("persistence"));
        report
            .remaining
            .insert(FilterStage::Persistence, persisted.strictly_persistent);

        let grouped: BTreeMap<_, _> = build_iotps(&persisted.lsps, &keep)
            .into_iter()
            .map(|i| (i.key, i))
            .collect();
        let iotps: Vec<_> = grouped
            .into_values()
            .map(|iotp| {
                let c = if pipeline.alias_rescue {
                    crate::alias::classify_with_alias_heuristic(&iotp)
                } else {
                    classify_iotp(&iotp)
                };
                (iotp, c)
            })
            .collect();
        let classification_us = lpr_obs::time::duration_us(timer.lap("classification"));

        let output = PipelineOutput { iotps, report, dynamic_ases: persisted.dynamic_ases };
        if let Some(rec) = recorder {
            if self.traces_in > 0 {
                rec.record_stage(
                    "TunnelExtraction",
                    self.extraction_us,
                    self.traces_in,
                    output.report.input as u64,
                );
                rec.counter("pipeline.traces").add(self.traces_in);
            }
            record_filter_stages(
                rec,
                &output.report,
                [self.attribution_us, 0, 0, transit_us, persistence_us],
            );
            rec.record_stage(
                "Classification",
                classification_us,
                output.report.remaining.get(&FilterStage::Persistence).copied().unwrap_or(0)
                    as u64,
                output.iotps.len() as u64,
            );
            rec.counter("pipeline.tunnels").add(output.report.input as u64);
            rec.counter("pipeline.iotps_classified").add(output.iotps.len() as u64);
            rec.counter("pipeline.dynamic_ases").add(output.dynamic_ases.len() as u64);
        }
        output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Lse;
    use crate::lsp::Asn;
    use crate::trace::Hop;
    use std::net::Ipv4Addr;

    fn ip(a: u8, o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, a, 0, o)
    }

    fn mapper(addr: Ipv4Addr) -> Option<Asn> {
        let o = addr.octets();
        match o[0] {
            10 => Some(Asn(o[1] as u32)),
            192 => Some(Asn(100)),
            198 => Some(Asn(101)),
            _ => None,
        }
    }

    fn mpls_trace(dst: Ipv4Addr, labels: [u32; 2], lsrs: [u8; 2]) -> Trace {
        let mut t = Trace::new(Ipv4Addr::new(203, 0, 113, 5), dst);
        t.push_hop(Hop::responsive(1, ip(1, 1)));
        t.push_hop(Hop::labelled(2, ip(1, lsrs[0]), &[Lse::transit(labels[0], 254)]));
        t.push_hop(Hop::labelled(3, ip(1, lsrs[1]), &[Lse::transit(labels[1], 253)]));
        t.push_hop(Hop::responsive(4, ip(1, 9)));
        t.push_hop(Hop::responsive(5, dst));
        t.reached = true;
        t
    }

    fn sample_traces() -> Vec<Trace> {
        vec![
            mpls_trace(Ipv4Addr::new(192, 0, 2, 7), [100, 200], [2, 3]),
            mpls_trace(Ipv4Addr::new(198, 51, 100, 7), [101, 201], [2, 3]),
            mpls_trace(Ipv4Addr::new(192, 0, 2, 9), [100, 200], [2, 3]),
        ]
    }

    #[test]
    fn streaming_equals_batch() {
        let traces = sample_traces();
        let keys = Pipeline::snapshot_keys(&traces);
        let pipeline = Pipeline::default();

        let batch = pipeline.run(&traces, &mapper, std::slice::from_ref(&keys));

        let mut acc = CycleAccumulator::new(&mapper);
        for t in &traces {
            acc.push_trace(t);
        }
        let streamed = acc.finish(&pipeline, std::slice::from_ref(&keys));

        assert_eq!(streamed.report, batch.report);
        assert_eq!(streamed.class_counts(), batch.class_counts());
        assert_eq!(streamed.dynamic_ases, batch.dynamic_ases);
        assert_eq!(streamed.iotps.len(), batch.iotps.len());
        for ((ia, ca), (ib, cb)) in streamed.iotps.iter().zip(&batch.iotps) {
            assert_eq!(ia.key, ib.key);
            assert_eq!(ca, cb);
        }
    }

    #[test]
    fn memory_is_bounded_by_surviving_lsps() {
        // Traces whose tunnels fail the per-LSP filters retain nothing.
        let mut t = Trace::new(Ipv4Addr::new(203, 0, 113, 5), ip(1, 200));
        t.push_hop(Hop::responsive(1, ip(1, 1)));
        t.push_hop(Hop::labelled(2, ip(1, 2), &[Lse::transit(100, 254)]));
        t.push_hop(Hop::responsive(3, ip(1, 9)));
        t.push_hop(Hop::responsive(4, ip(1, 200))); // dst inside the AS
        t.reached = true;

        let mut acc = CycleAccumulator::new(&mapper);
        for _ in 0..100 {
            acc.push_trace(&t);
        }
        assert_eq!(acc.retained(), 0, "TargetAS-failing LSPs must not accumulate");
        let out = acc.finish(&Pipeline::default(), &[]);
        assert_eq!(out.report.input, 100);
        assert!(out.iotps.is_empty());
    }

    #[test]
    fn streaming_telemetry_reconciles_with_report() {
        let traces = sample_traces();
        let keys = Pipeline::snapshot_keys(&traces);
        let rec = lpr_obs::Recorder::new("stream");
        let mut acc = CycleAccumulator::new(&mapper);
        for t in &traces {
            acc.push_trace(t);
        }
        let out = acc.finish_recorded(&Pipeline::default(), &[keys], Some(&rec));
        let telemetry = rec.finish();

        let extraction = telemetry.stage("TunnelExtraction").unwrap();
        assert_eq!(extraction.input, traces.len() as u64);
        assert_eq!(extraction.output, out.report.input as u64);
        let mut input = out.report.input as u64;
        for stage in FilterStage::ALL {
            let s = telemetry.stage(stage.name()).expect(stage.name());
            assert_eq!(s.input, input, "{} input", stage.name());
            assert_eq!(s.output, out.report.remaining[&stage] as u64, "{} output", stage.name());
            input = s.output;
        }
        assert_eq!(telemetry.stage("Classification").unwrap().output, out.iotps.len() as u64);
    }

    #[test]
    fn streaming_respects_pipeline_options() {
        let traces = sample_traces();
        let mut pipeline = Pipeline::default();
        pipeline.skip_transit_diversity = true;
        let mut acc = CycleAccumulator::new(&mapper);
        for t in &traces {
            acc.push_trace(t);
        }
        let keys = Pipeline::snapshot_keys(&traces);
        let out = acc.finish(&pipeline, &[keys]);
        let batch = pipeline.run(&traces, &mapper, &[Pipeline::snapshot_keys(&traces)]);
        assert_eq!(out.class_counts(), batch.class_counts());
    }
}
