//! The classification step of LPR (paper §3.2, Algorithm 1).
//!
//! Every filtered IOTP is assigned to one of four classes by recognising
//! the standard label-distribution behaviours of LDP versus RSVP-TE:
//!
//! * **Mono-LSP** — a single LSP whatever the destination: no transit
//!   path diversity (Fig. 4a).
//! * **Multi-FEC** — at least one *common IP address* (an LSR interface
//!   crossed by ≥2 distinct LSPs) exposes **different labels** for
//!   different LSPs. LDP would have advertised one label per prefix to
//!   all neighbours, so distinct labels on the same router for the same
//!   egress betray distinct FECs, i.e. RSVP-TE traffic engineering
//!   (Fig. 4b).
//! * **ECMP Mono-FEC** — every common IP address carries a single label:
//!   one FEC, with the path diversity coming from IGP ECMP underneath
//!   LDP. Split into **Parallel Links** (identical label sequences with
//!   differing addresses ⇒ the addresses are aliases on bundled links,
//!   Fig. 4d) and **Routers Disjoint** (labels *and* addresses differ at
//!   some hop ⇒ genuinely diverse routers, Fig. 4c).
//! * **Unclassified** — no common IP address at all, which happens when
//!   PHP hides the labels at the only convergence point (the egress
//!   LER). §5's alias heuristic ([`crate::alias`]) can rescue these.

use crate::label::Label;
use crate::lsp::Iotp;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::net::Ipv4Addr;

/// The ECMP Mono-FEC subclasses (paper Fig. 4c / 4d and Fig. 13).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MonoFecKind {
    /// Identical label sequences on every branch while addresses differ:
    /// LDP label scope is per-router, so two distinct routers would not
    /// have chosen the same labels — the addresses must be aliases of
    /// the same routers, i.e. ECMP over parallel (bundled) links.
    ParallelLinks,
    /// Branches differ in both labels and addresses at some hop: ECMP
    /// across disjoint routers.
    RoutersDisjoint,
}

/// The LPR classes (paper Fig. 3 and Algorithm 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Class {
    /// A single LSP for every destination AS: no observable diversity.
    MonoLsp,
    /// Distinct labels on a common IP address: RSVP-TE / multiple FECs.
    MultiFec,
    /// A single FEC with ECMP load balancing underneath.
    MonoFec(MonoFecKind),
    /// No common IP address: cannot conclude (typically PHP).
    Unclassified,
}

impl Class {
    /// Coarse class label used in the paper's figures
    /// (`Mono-LSP` / `Multi-FEC` / `Mono-FEC` / `Unclass.`).
    pub fn name(&self) -> &'static str {
        match self {
            Class::MonoLsp => "Mono-LSP",
            Class::MultiFec => "Multi-FEC",
            Class::MonoFec(_) => "Mono-FEC",
            Class::Unclassified => "Unclassified",
        }
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Class::MonoFec(MonoFecKind::ParallelLinks) => write!(f, "Mono-FEC (parallel links)"),
            Class::MonoFec(MonoFecKind::RoutersDisjoint) => {
                write!(f, "Mono-FEC (routers disjoint)")
            }
            other => f.write_str(other.name()),
        }
    }
}

/// Full classification result for one IOTP.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Classification {
    /// The class assigned by Algorithm 1.
    pub class: Class,
    /// Number of common IP addresses the IOTP exhibits (addresses of
    /// LSRs crossed by at least two distinct LSPs).
    pub common_ips: usize,
    /// The common IP addresses on which several labels were seen
    /// (non-empty exactly for Multi-FEC).
    pub multi_label_ips: Vec<Ipv4Addr>,
}

/// The set of label-value sequences observed at each address across the
/// IOTP's branches, restricted to addresses crossed by ≥2 branches.
///
/// This is the `getCommonIP()` of Algorithm 1 (line 15): an address
/// belongs to the common set when at least two *distinct* LSPs traverse
/// it. The associated value collects every label signature quoted there,
/// which line 21 then counts.
pub fn common_ip_labels(iotp: &Iotp) -> BTreeMap<Ipv4Addr, BTreeSet<Vec<Label>>> {
    // addr -> (branch indices that cross it, label signatures seen there)
    let mut seen: BTreeMap<Ipv4Addr, (BTreeSet<usize>, BTreeSet<Vec<Label>>)> = BTreeMap::new();
    for (bi, branch) in iotp.branches.iter().enumerate() {
        for hop in &branch.hops {
            let entry = seen.entry(hop.addr).or_default();
            entry.0.insert(bi);
            entry.1.insert(hop.labels());
        }
    }
    seen.into_iter()
        .filter(|(_, (branches, _))| branches.len() >= 2)
        .map(|(addr, (_, labels))| (addr, labels))
        .collect()
}

/// Classifies one IOTP (Algorithm 1 of the paper).
pub fn classify_iotp(iotp: &Iotp) -> Classification {
    // Line 10: a single LSP (same addresses, same labels) => Mono-LSP.
    if iotp.branches.len() <= 1 {
        return Classification { class: Class::MonoLsp, common_ips: 0, multi_label_ips: Vec::new() };
    }

    let common = common_ip_labels(iotp);

    // Lines 16–19: no common IP address => Unclassified.
    if common.is_empty() {
        return Classification {
            class: Class::Unclassified,
            common_ips: 0,
            multi_label_ips: Vec::new(),
        };
    }

    // Lines 20–25: any common IP with more than one label => Multi-FEC.
    let multi_label_ips: Vec<Ipv4Addr> = common
        .iter()
        .filter(|(_, labels)| labels.len() > 1)
        .map(|(addr, _)| *addr)
        .collect();
    if !multi_label_ips.is_empty() {
        return Classification {
            class: Class::MultiFec,
            common_ips: common.len(),
            multi_label_ips,
        };
    }

    // Lines 26–28: every common IP carries a single label => ECMP
    // Mono-FEC. Subclass split per §3.2's discussion of Fig. 4c/4d.
    let kind = mono_fec_kind(iotp);
    Classification {
        class: Class::MonoFec(kind),
        common_ips: common.len(),
        multi_label_ips: Vec::new(),
    }
}

/// Distinguishes the two Mono-FEC subclasses.
///
/// *Parallel Links*: the label sequences of all branches are identical
/// while addresses differ — the differing addresses must be aliases.
/// *Routers Disjoint*: at least one hop position differs in both labels
/// and addresses (or the branches have different lengths, which identical
/// label sequences cannot produce).
fn mono_fec_kind(iotp: &Iotp) -> MonoFecKind {
    let mut signatures = iotp
        .branches
        .iter()
        .map(|b| b.hops.iter().map(|h| h.labels()).collect::<Vec<_>>());
    let first = match signatures.next() {
        Some(s) => s,
        None => return MonoFecKind::ParallelLinks,
    };
    if signatures.all(|s| s == first) {
        MonoFecKind::ParallelLinks
    } else {
        MonoFecKind::RoutersDisjoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{LabelStack, Lse};
    use crate::lsp::{Asn, Iotp, IotpKey, Lsp, LspHop};
    use std::net::Ipv4Addr;

    fn ip(o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, o)
    }

    fn key() -> IotpKey {
        IotpKey { asn: Asn(65000), ingress: ip(1), egress: ip(9) }
    }

    /// Builds an LSP whose LSR hops are (last-octet, label) pairs.
    fn lsp(hops: &[(u8, u32)], dst_asn: u32) -> Lsp {
        Lsp {
            asn: Asn(65000),
            ingress: ip(1),
            egress: ip(9),
            hops: hops
                .iter()
                .map(|&(o, l)| {
                    LspHop::new(ip(o), LabelStack::from_entries(&[Lse::transit(l, 255)]))
                })
                .collect(),
            dst: Ipv4Addr::new(192, 0, 2, 1),
            dst_asn: Some(Asn(dst_asn)),
        }
    }

    fn iotp_of(lsps: &[Lsp]) -> Iotp {
        let mut iotp = Iotp::new(key());
        for l in lsps {
            iotp.absorb(l);
        }
        iotp
    }

    #[test]
    fn single_lsp_is_mono_lsp() {
        // Fig. 4a: same path, two destination ASes.
        let iotp = iotp_of(&[lsp(&[(2, 100), (3, 200)], 1), lsp(&[(2, 100), (3, 200)], 2)]);
        assert_eq!(classify_iotp(&iotp).class, Class::MonoLsp);
    }

    #[test]
    fn different_labels_on_common_ip_is_multi_fec() {
        // Fig. 4b: both LSPs cross LSR ip(3) which shows L200 vs L201.
        let iotp = iotp_of(&[lsp(&[(2, 100), (3, 200)], 1), lsp(&[(2, 101), (3, 201)], 2)]);
        let c = classify_iotp(&iotp);
        assert_eq!(c.class, Class::MultiFec);
        assert!(c.multi_label_ips.contains(&ip(2)));
        assert!(c.multi_label_ips.contains(&ip(3)));
    }

    #[test]
    fn multi_fec_detected_even_on_single_common_hop() {
        // Paths differ everywhere except one convergence LSR.
        let iotp = iotp_of(&[
            lsp(&[(2, 100), (5, 300), (3, 200)], 1),
            lsp(&[(4, 101), (6, 301), (3, 201)], 2),
        ]);
        let c = classify_iotp(&iotp);
        assert_eq!(c.class, Class::MultiFec);
        assert_eq!(c.multi_label_ips, vec![ip(3)]);
    }

    #[test]
    fn ecmp_disjoint_routers() {
        // Fig. 4c: diverge through different routers (different labels
        // AND addresses), reconverge on a common tail with equal labels.
        let iotp = iotp_of(&[
            lsp(&[(2, 100), (7, 400)], 1),
            lsp(&[(4, 101), (7, 400)], 2),
        ]);
        let c = classify_iotp(&iotp);
        assert_eq!(c.class, Class::MonoFec(MonoFecKind::RoutersDisjoint));
        assert_eq!(c.common_ips, 1);
    }

    #[test]
    fn ecmp_parallel_links() {
        // Fig. 4d: same labels all along, different interface addresses
        // on the first hop (parallel links towards the same LSR), then a
        // shared hop.
        let iotp = iotp_of(&[
            lsp(&[(2, 100), (7, 400)], 1),
            lsp(&[(3, 100), (7, 400)], 2),
        ]);
        let c = classify_iotp(&iotp);
        assert_eq!(c.class, Class::MonoFec(MonoFecKind::ParallelLinks));
    }

    #[test]
    fn no_common_ip_is_unclassified() {
        // PHP case: LSPs converge only at the (label-less) egress LER.
        let iotp = iotp_of(&[lsp(&[(2, 100)], 1), lsp(&[(4, 101)], 2)]);
        assert_eq!(classify_iotp(&iotp).class, Class::Unclassified);
    }

    #[test]
    fn different_lengths_with_common_tail_single_label_is_disjoint() {
        let iotp = iotp_of(&[
            lsp(&[(2, 100), (5, 300), (7, 400)], 1),
            lsp(&[(4, 101), (7, 400)], 2),
        ]);
        assert_eq!(
            classify_iotp(&iotp).class,
            Class::MonoFec(MonoFecKind::RoutersDisjoint)
        );
    }

    #[test]
    fn multi_fec_takes_precedence_over_ecmp() {
        // Three branches: two form an ECMP pattern, the third reuses a
        // common IP with a different label => Multi-FEC wins (the paper
        // classifies an IOTP multi-FEC as soon as one common IP shows
        // distinct labels — an upper bound on TE usage, §3.2).
        let iotp = iotp_of(&[
            lsp(&[(2, 100), (7, 400)], 1),
            lsp(&[(4, 101), (7, 400)], 2),
            lsp(&[(2, 100), (7, 401)], 3),
        ]);
        assert_eq!(classify_iotp(&iotp).class, Class::MultiFec);
    }

    #[test]
    fn label_stack_depth_matters() {
        // Same outer label but different inner label at the common hop:
        // distinct signatures => Multi-FEC.
        let mk = |inner: u32, dst: u32| Lsp {
            asn: Asn(65000),
            ingress: ip(1),
            egress: ip(9),
            hops: vec![LspHop::new(
                ip(3),
                LabelStack::from_entries(&[Lse::transit(100, 255), Lse::transit(inner, 255)]),
            )],
            dst: Ipv4Addr::new(192, 0, 2, 1),
            dst_asn: Some(Asn(dst)),
        };
        let iotp = iotp_of(&[mk(7, 1), mk(8, 2)]);
        assert_eq!(classify_iotp(&iotp).class, Class::MultiFec);
    }

    #[test]
    fn common_ip_labels_counts_branches_not_observations() {
        // The same LSP observed twice is ONE branch: its hop addresses
        // are not "common" on their own.
        let iotp = iotp_of(&[lsp(&[(2, 100)], 1), lsp(&[(2, 100)], 2)]);
        assert!(common_ip_labels(&iotp).is_empty());
    }

    #[test]
    fn classification_names() {
        assert_eq!(Class::MonoLsp.name(), "Mono-LSP");
        assert_eq!(Class::MonoFec(MonoFecKind::ParallelLinks).name(), "Mono-FEC");
        assert_eq!(
            Class::MonoFec(MonoFecKind::ParallelLinks).to_string(),
            "Mono-FEC (parallel links)"
        );
    }
}
