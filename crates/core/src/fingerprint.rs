//! Vendor fingerprinting from observed label values.
//!
//! Label ranges are vendor-specific (paper §2.2): Cisco platforms
//! allocate dynamic labels from 16 upwards, Juniper from 299 776
//! upwards. The paper uses this (together with its earlier TTL-based
//! fingerprinting work) to attribute the Fig. 17 re-optimisation
//! behaviour "mainly to Juniper hardware". This module infers the
//! dominant platform of an AS from the labels its LSRs expose — a
//! handy sanity check when auditing an unknown ISP.

use crate::lsp::{Asn, Iotp};
use crate::label::Label;
use std::collections::BTreeMap;

/// First label of the Juniper dynamic range.
pub const JUNIPER_RANGE_START: u32 = 299_776;

/// The platform inferred for an AS.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InferredVendor {
    /// Labels dominated by the low (16…) dynamic range.
    CiscoLike,
    /// Labels dominated by the 299 776… dynamic range.
    JuniperLike,
    /// Not enough signal, or an even mix (multi-vendor networks
    /// exist).
    Mixed,
}

/// Tally of observed labels per vendor range.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VendorEvidence {
    /// Labels in `16..299_776`.
    pub low_range: usize,
    /// Labels in `299_776..`.
    pub high_range: usize,
    /// Reserved labels (0–15), counted separately — they say nothing
    /// about the platform.
    pub reserved: usize,
}

impl VendorEvidence {
    /// Adds one observed label.
    pub fn add(&mut self, label: Label) {
        if label.is_reserved() {
            self.reserved += 1;
        } else if label.value() >= JUNIPER_RANGE_START {
            self.high_range += 1;
        } else {
            self.low_range += 1;
        }
    }

    /// The verdict: a platform is inferred when it owns at least ¾ of
    /// the non-reserved observations (and there are at least 4).
    pub fn verdict(&self) -> InferredVendor {
        let total = self.low_range + self.high_range;
        if total < 4 {
            return InferredVendor::Mixed;
        }
        if self.high_range * 4 >= total * 3 {
            InferredVendor::JuniperLike
        } else if self.low_range * 4 >= total * 3 {
            InferredVendor::CiscoLike
        } else {
            InferredVendor::Mixed
        }
    }
}

/// Accumulates label evidence per AS over classified IOTPs and infers
/// each AS's dominant platform.
pub fn infer_vendors<'a>(
    iotps: impl IntoIterator<Item = &'a Iotp>,
) -> BTreeMap<Asn, (VendorEvidence, InferredVendor)> {
    let mut evidence: BTreeMap<Asn, VendorEvidence> = BTreeMap::new();
    for iotp in iotps {
        let e = evidence.entry(iotp.key.asn).or_default();
        for branch in &iotp.branches {
            for hop in &branch.hops {
                for label in hop.labels() {
                    e.add(label);
                }
            }
        }
    }
    evidence
        .into_iter()
        .map(|(asn, e)| (asn, (e, e.verdict())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{LabelStack, Lse};
    use crate::lsp::{IotpKey, Lsp, LspHop};
    use std::net::Ipv4Addr;

    fn iotp_with_labels(asn: u32, labels: &[u32]) -> Iotp {
        let ip = |o: u8| Ipv4Addr::new(10, 0, 0, o);
        let key = IotpKey { asn: Asn(asn), ingress: ip(1), egress: ip(9) };
        let mut iotp = Iotp::new(key);
        for (i, &l) in labels.iter().enumerate() {
            iotp.absorb(&Lsp {
                asn: Asn(asn),
                ingress: ip(1),
                egress: ip(9),
                hops: vec![LspHop::new(
                    ip(2 + i as u8),
                    LabelStack::from_entries(&[Lse::transit(l, 255)]),
                )],
                dst: Ipv4Addr::new(192, 0, 2, 1),
                dst_asn: Some(Asn(100 + i as u32)),
            });
        }
        iotp
    }

    #[test]
    fn juniper_range_is_detected() {
        let iotp = iotp_with_labels(1, &[300_000, 301_234, 456_789, 700_000]);
        let v = infer_vendors([&iotp]);
        assert_eq!(v[&Asn(1)].1, InferredVendor::JuniperLike);
    }

    #[test]
    fn cisco_range_is_detected() {
        let iotp = iotp_with_labels(1, &[16, 1024, 99_000, 24]);
        let v = infer_vendors([&iotp]);
        assert_eq!(v[&Asn(1)].1, InferredVendor::CiscoLike);
    }

    #[test]
    fn mixed_or_scarce_evidence_stays_mixed() {
        // Not enough labels.
        let iotp = iotp_with_labels(1, &[300_000]);
        assert_eq!(infer_vendors([&iotp])[&Asn(1)].1, InferredVendor::Mixed);
        // Even mix.
        let iotp = iotp_with_labels(2, &[16, 17, 300_000, 300_001]);
        assert_eq!(infer_vendors([&iotp])[&Asn(2)].1, InferredVendor::Mixed);
    }

    #[test]
    fn reserved_labels_are_neutral() {
        let mut e = VendorEvidence::default();
        for l in [0u32, 3, 300_000, 300_001, 300_002, 300_003] {
            e.add(Label::new(l));
        }
        assert_eq!(e.reserved, 2);
        assert_eq!(e.verdict(), InferredVendor::JuniperLike);
    }
}
