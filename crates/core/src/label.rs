//! MPLS label-stack entries (LSEs) and label stacks.
//!
//! An LSE is the 32-bit word inserted between the link-layer frame and the
//! IP packet (Fig. 1 of the paper, RFC 3032):
//!
//! ```text
//!  0                   19  22 23 24       31
//! +----------------------+---+--+-----------+
//! |        Label         | TC|S |  LSE-TTL  |
//! +----------------------+---+--+-----------+
//! ```
//!
//! * 20-bit **label** used for the exact-match forwarding lookup,
//! * 3-bit **traffic class** (QoS / ECN, RFC 5462),
//! * 1-bit **bottom-of-stack** flag,
//! * 8-bit **LSE-TTL** with the same semantics as the IP TTL.

use std::fmt;

/// A 20-bit MPLS label value.
///
/// Labels 0–15 are reserved by IANA (e.g. 0 = IPv4 explicit null,
/// 1 = router alert, 3 = implicit null used to signal penultimate-hop
/// popping). Labels allocated by LDP/RSVP-TE start at 16; the exact range
/// is vendor-specific (see the paper §2.2 and the `netsim` vendor models).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(u32);

impl Label {
    /// Maximum label value (20 bits).
    pub const MAX: u32 = (1 << 20) - 1;
    /// IPv4 explicit null: pop and forward based on the IPv4 header.
    pub const IPV4_EXPLICIT_NULL: Label = Label(0);
    /// Router alert label.
    pub const ROUTER_ALERT: Label = Label(1);
    /// Implicit null: never appears on the wire; advertised by an egress
    /// LER to request penultimate-hop popping (PHP).
    pub const IMPLICIT_NULL: Label = Label(3);
    /// First label available for dynamic allocation on most platforms.
    pub const MIN_DYNAMIC: Label = Label(16);

    /// Creates a label, masking to 20 bits.
    #[inline]
    pub const fn new(value: u32) -> Self {
        Label(value & Self::MAX)
    }

    /// Raw 20-bit value.
    #[inline]
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Whether this is one of the IANA-reserved labels (0–15).
    #[inline]
    pub const fn is_reserved(self) -> bool {
        self.0 < 16
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Label {
    fn from(v: u32) -> Self {
        Label::new(v)
    }
}

/// A single MPLS label stack entry, as quoted in an RFC 4950 ICMP
/// extension or carried on the wire.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lse {
    /// The 20-bit label.
    pub label: Label,
    /// 3-bit traffic class (formerly EXP).
    pub tc: u8,
    /// Bottom-of-stack flag.
    pub bottom: bool,
    /// The 8-bit LSE TTL.
    pub ttl: u8,
}

impl Lse {
    /// Creates an LSE from its fields. `tc` is masked to 3 bits.
    #[inline]
    pub const fn new(label: Label, tc: u8, bottom: bool, ttl: u8) -> Self {
        Lse { label, tc: tc & 0x7, bottom, ttl }
    }

    /// Convenience constructor for the common transit case: best-effort
    /// traffic class, bottom of stack set.
    #[inline]
    pub const fn transit(label: u32, ttl: u8) -> Self {
        Lse { label: Label::new(label), tc: 0, bottom: true, ttl }
    }

    /// Packs the LSE into its 32-bit wire representation.
    #[inline]
    pub const fn to_u32(self) -> u32 {
        (self.label.value() << 12)
            | ((self.tc as u32) << 9)
            | ((self.bottom as u32) << 8)
            | self.ttl as u32
    }

    /// Unpacks an LSE from its 32-bit wire representation.
    #[inline]
    pub const fn from_u32(word: u32) -> Self {
        Lse {
            label: Label::new(word >> 12),
            tc: ((word >> 9) & 0x7) as u8,
            bottom: (word >> 8) & 1 == 1,
            ttl: (word & 0xff) as u8,
        }
    }
}

impl fmt::Debug for Lse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Lse({}, tc={}, s={}, ttl={})",
            self.label, self.tc, self.bottom as u8, self.ttl
        )
    }
}

/// An ordered MPLS label stack, outermost entry first.
///
/// Transit tunnels observed by the paper overwhelmingly carry a single
/// entry; stacks deeper than one appear with e.g. VPN service labels or
/// LDP-over-RSVP. The stack preserves every entry so such cases survive
/// analysis unharmed.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct LabelStack(Vec<Lse>);

impl LabelStack {
    /// An empty stack (an unlabelled hop).
    pub fn empty() -> Self {
        LabelStack(Vec::new())
    }

    /// Builds a stack from entries, outermost first.
    pub fn from_entries(entries: &[Lse]) -> Self {
        LabelStack(entries.to_vec())
    }

    /// Number of entries.
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// True if the stack has no entries.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The outermost (top, forwarding) entry.
    pub fn top(&self) -> Option<&Lse> {
        self.0.first()
    }

    /// All entries, outermost first.
    pub fn entries(&self) -> &[Lse] {
        &self.0
    }

    /// Pushes a new outermost entry.
    pub fn push(&mut self, lse: Lse) {
        self.0.insert(0, lse);
    }

    /// Pops the outermost entry.
    pub fn pop(&mut self) -> Option<Lse> {
        if self.0.is_empty() {
            None
        } else {
            Some(self.0.remove(0))
        }
    }

    /// Swaps the outermost label in place, keeping TC/S/TTL.
    pub fn swap_top(&mut self, label: Label) {
        if let Some(top) = self.0.first_mut() {
            top.label = label;
        }
    }

    /// The sequence of label *values* (ignoring TC/S/TTL), outermost
    /// first. This is the signature LPR compares: TTLs obviously differ
    /// hop to hop and say nothing about the FEC.
    pub fn label_values(&self) -> Vec<Label> {
        self.0.iter().map(|l| l.label).collect()
    }
}

impl fmt::Debug for LabelStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, l) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "|")?;
            }
            write!(f, "{}", l.label)?;
        }
        write!(f, "]")
    }
}

impl FromIterator<Lse> for LabelStack {
    fn from_iter<T: IntoIterator<Item = Lse>>(iter: T) -> Self {
        LabelStack(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_masks_to_20_bits() {
        assert_eq!(Label::new(u32::MAX).value(), Label::MAX);
        assert_eq!(Label::new(42).value(), 42);
    }

    #[test]
    fn reserved_labels() {
        assert!(Label::IPV4_EXPLICIT_NULL.is_reserved());
        assert!(Label::IMPLICIT_NULL.is_reserved());
        assert!(!Label::MIN_DYNAMIC.is_reserved());
        assert!(!Label::new(300_000).is_reserved());
    }

    #[test]
    fn lse_roundtrip() {
        let lse = Lse::new(Label::new(0xABCDE), 5, true, 200);
        assert_eq!(Lse::from_u32(lse.to_u32()), lse);
    }

    #[test]
    fn lse_wire_layout() {
        // label=1, tc=0, s=1, ttl=255 => 0x0000_1_1FF
        let lse = Lse::new(Label::new(1), 0, true, 255);
        assert_eq!(lse.to_u32(), (1 << 12) | (1 << 8) | 0xff);
    }

    #[test]
    fn tc_masked() {
        let lse = Lse::new(Label::new(1), 0xff, false, 0);
        assert_eq!(lse.tc, 7);
    }

    #[test]
    fn stack_push_pop_order() {
        let mut s = LabelStack::empty();
        s.push(Lse::transit(10, 255));
        s.push(Lse::transit(20, 255));
        assert_eq!(s.depth(), 2);
        assert_eq!(s.top().unwrap().label.value(), 20);
        assert_eq!(s.pop().unwrap().label.value(), 20);
        assert_eq!(s.pop().unwrap().label.value(), 10);
        assert!(s.pop().is_none());
    }

    #[test]
    fn stack_swap_top() {
        let mut s = LabelStack::from_entries(&[Lse::transit(10, 250), Lse::transit(99, 250)]);
        s.swap_top(Label::new(77));
        assert_eq!(s.label_values(), vec![Label::new(77), Label::new(99)]);
        // TTL preserved by swap.
        assert_eq!(s.top().unwrap().ttl, 250);
    }

    #[test]
    fn label_values_ignore_ttl() {
        let a = LabelStack::from_entries(&[Lse::transit(10, 250)]);
        let b = LabelStack::from_entries(&[Lse::transit(10, 12)]);
        assert_eq!(a.label_values(), b.label_values());
        assert_ne!(a, b);
    }
}
