//! IOTP length, width and symmetry (paper §4.3).
//!
//! These adapt the load-balanced-path metrics of Augustin et al. to
//! IOTPs:
//!
//! * **length** — the number of LSRs in the *longest* LSP of the IOTP,
//!   LERs excluded (Fig. 7);
//! * **width** — the number of branches between the ingress and egress
//!   LERs, physically or logically distinct (Fig. 8);
//! * **symmetry** — length minus the number of LSRs in the *shortest*
//!   LSP; `0` means balanced (Fig. 9).

use crate::hist::Histogram;
use crate::lsp::Iotp;

/// The three §4.3 metrics for one IOTP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IotpMetrics {
    /// LSRs in the longest branch.
    pub length: usize,
    /// Number of branches.
    pub width: usize,
    /// Longest minus shortest branch (in LSRs).
    pub symmetry: usize,
}

impl IotpMetrics {
    /// Computes the metrics of an IOTP. An IOTP always holds at least
    /// one branch by construction; an empty one reports all zeros.
    pub fn of(iotp: &Iotp) -> Self {
        let longest = iotp.branches.iter().map(|b| b.lsr_count()).max().unwrap_or(0);
        let shortest = iotp.branches.iter().map(|b| b.lsr_count()).min().unwrap_or(0);
        IotpMetrics { length: longest, width: iotp.width(), symmetry: longest - shortest }
    }

    /// Whether the IOTP is balanced (symmetrical): all branches have the
    /// same LSR count.
    pub fn is_balanced(&self) -> bool {
        self.symmetry == 0
    }
}

/// Length / width / symmetry distributions over a set of IOTPs, as
/// plotted in Figs. 7–9.
#[derive(Clone, Debug, Default)]
pub struct MetricDistributions {
    /// IOTP length histogram.
    pub length: Histogram,
    /// IOTP width histogram.
    pub width: Histogram,
    /// IOTP symmetry histogram.
    pub symmetry: Histogram,
}

impl MetricDistributions {
    /// Accumulates one IOTP.
    pub fn add(&mut self, iotp: &Iotp) {
        let m = IotpMetrics::of(iotp);
        self.length.add(m.length as u64);
        self.width.add(m.width as u64);
        self.symmetry.add(m.symmetry as u64);
    }

    /// Accumulates many IOTPs.
    pub fn collect<'a>(iotps: impl IntoIterator<Item = &'a Iotp>) -> Self {
        let mut d = MetricDistributions::default();
        for i in iotps {
            d.add(i);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{LabelStack, Lse};
    use crate::lsp::{Asn, Iotp, IotpKey, Lsp, LspHop};
    use std::net::Ipv4Addr;

    fn ip(o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, o)
    }

    fn iotp(branch_lengths: &[usize]) -> Iotp {
        let key = IotpKey { asn: Asn(1), ingress: ip(1), egress: ip(9) };
        let mut iotp = Iotp::new(key);
        for (bi, &len) in branch_lengths.iter().enumerate() {
            let lsp = Lsp {
                asn: Asn(1),
                ingress: ip(1),
                egress: ip(9),
                hops: (0..len)
                    .map(|h| {
                        LspHop::new(
                            Ipv4Addr::new(10, 0, bi as u8 + 1, h as u8 + 1),
                            LabelStack::from_entries(&[Lse::transit(
                                (bi * 100 + h) as u32 + 16,
                                255,
                            )]),
                        )
                    })
                    .collect(),
                dst: Ipv4Addr::new(192, 0, 2, 1),
                dst_asn: Some(Asn(100 + bi as u32)),
            };
            iotp.absorb(&lsp);
        }
        iotp
    }

    #[test]
    fn metrics_of_single_branch() {
        let m = IotpMetrics::of(&iotp(&[3]));
        assert_eq!(m, IotpMetrics { length: 3, width: 1, symmetry: 0 });
        assert!(m.is_balanced());
    }

    #[test]
    fn metrics_of_unbalanced_iotp() {
        let m = IotpMetrics::of(&iotp(&[5, 2, 4]));
        assert_eq!(m, IotpMetrics { length: 5, width: 3, symmetry: 3 });
        assert!(!m.is_balanced());
    }

    #[test]
    fn distributions_accumulate() {
        let iotps = [iotp(&[3]), iotp(&[2, 2]), iotp(&[4, 1])];
        let d = MetricDistributions::collect(iotps.iter());
        assert_eq!(d.length.total(), 3);
        assert_eq!(d.width.count(1), 1);
        assert_eq!(d.width.count(2), 2);
        assert_eq!(d.symmetry.count(0), 2);
        assert_eq!(d.symmetry.count(3), 1);
    }
}
