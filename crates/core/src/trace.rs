//! The traceroute data model consumed by LPR.
//!
//! LPR is format-agnostic: any traceroute dataset can be analysed as long
//! as explicit MPLS tunnels can be retrieved from it (paper §3, footnote
//! 2). This module defines that minimal in-memory representation. The
//! `warts` crate converts scamper's binary dumps into it; the `netsim`
//! crate produces it directly.

use crate::label::{LabelStack, Lse};
use std::fmt;
use std::net::Ipv4Addr;

/// One traceroute hop: the reply (or lack thereof) elicited by the probe
/// with a given TTL.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Hop {
    /// TTL of the probe that elicited this reply.
    pub probe_ttl: u8,
    /// Address that sourced the ICMP reply; `None` for an anonymous
    /// (non-responding) hop.
    pub addr: Option<Ipv4Addr>,
    /// Round-trip time in microseconds (0 when unknown).
    pub rtt_us: u32,
    /// MPLS label stack quoted via the RFC 4950 ICMP extension, outermost
    /// entry first. Empty when the hop exposed no label, either because
    /// the packet was unlabelled or because the router does not implement
    /// the extension.
    pub stack: LabelStack,
}

impl Hop {
    /// An anonymous hop: the probe expired but nothing replied (or the
    /// reply was lost).
    pub fn anonymous(probe_ttl: u8) -> Self {
        Hop { probe_ttl, addr: None, rtt_us: 0, stack: LabelStack::empty() }
    }

    /// A responsive, unlabelled hop.
    pub fn responsive(probe_ttl: u8, addr: Ipv4Addr) -> Self {
        Hop { probe_ttl, addr: Some(addr), rtt_us: 0, stack: LabelStack::empty() }
    }

    /// A responsive hop quoting an MPLS label stack (outermost first).
    pub fn labelled(probe_ttl: u8, addr: Ipv4Addr, stack: &[Lse]) -> Self {
        Hop {
            probe_ttl,
            addr: Some(addr),
            rtt_us: 0,
            stack: LabelStack::from_entries(stack),
        }
    }

    /// Whether the hop replied at all.
    pub fn is_responsive(&self) -> bool {
        self.addr.is_some()
    }

    /// Whether the hop exposed an MPLS label stack.
    pub fn is_labelled(&self) -> bool {
        !self.stack.is_empty()
    }
}

impl fmt::Debug for Hop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.addr {
            Some(a) => write!(f, "{} {} {:?}", self.probe_ttl, a, self.stack),
            None => write!(f, "{} *", self.probe_ttl),
        }
    }
}

/// A single traceroute: the ordered hop list from a vantage point towards
/// a destination.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Vantage-point (monitor) address.
    pub src: Ipv4Addr,
    /// Probed destination.
    pub dst: Ipv4Addr,
    /// Hops, ordered by probe TTL (not necessarily contiguous:
    /// anonymous hops may be represented either as explicit [`Hop`]s with
    /// `addr == None` or as gaps in the TTL sequence — tunnel extraction
    /// handles both).
    pub hops: Vec<Hop>,
    /// Whether the destination itself replied (trace completed).
    pub reached: bool,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr) -> Self {
        Trace { src, dst, hops: Vec::new(), reached: false }
    }

    /// Appends a hop. Hops must be pushed in increasing probe-TTL order;
    /// this is asserted in debug builds.
    pub fn push_hop(&mut self, hop: Hop) {
        debug_assert!(
            self.hops.last().is_none_or(|h| h.probe_ttl < hop.probe_ttl),
            "hops must be pushed in increasing TTL order"
        );
        self.hops.push(hop);
    }

    /// Number of hops recorded (including anonymous ones).
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True if the trace holds no hops.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Whether any hop exposes an MPLS label stack — i.e. the trace
    /// traverses at least one *explicit* tunnel (used for Fig. 5a).
    pub fn has_mpls(&self) -> bool {
        self.hops.iter().any(Hop::is_labelled)
    }

    /// Iterates over responsive hops.
    pub fn responsive_hops(&self) -> impl Iterator<Item = &Hop> {
        self.hops.iter().filter(|h| h.is_responsive())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, o)
    }

    #[test]
    fn hop_kinds() {
        assert!(!Hop::anonymous(1).is_responsive());
        assert!(Hop::responsive(1, ip(1)).is_responsive());
        assert!(!Hop::responsive(1, ip(1)).is_labelled());
        assert!(Hop::labelled(1, ip(1), &[Lse::transit(16, 255)]).is_labelled());
    }

    #[test]
    fn trace_has_mpls() {
        let mut t = Trace::new(ip(100), ip(200));
        t.push_hop(Hop::responsive(1, ip(1)));
        assert!(!t.has_mpls());
        t.push_hop(Hop::labelled(2, ip(2), &[Lse::transit(16, 255)]));
        assert!(t.has_mpls());
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn trace_rejects_out_of_order_hops() {
        let mut t = Trace::new(ip(100), ip(200));
        t.push_hop(Hop::responsive(2, ip(1)));
        t.push_hop(Hop::responsive(1, ip(2)));
    }

    #[test]
    fn responsive_iter_skips_anonymous() {
        let mut t = Trace::new(ip(100), ip(200));
        t.push_hop(Hop::responsive(1, ip(1)));
        t.push_hop(Hop::anonymous(2));
        t.push_hop(Hop::responsive(3, ip(3)));
        assert_eq!(t.responsive_hops().count(), 2);
    }
}
