//! The §5 penultimate-hop alias heuristic.
//!
//! With PHP, the LSPs of an IOTP may only converge at the Egress LER,
//! which exposes no label — Algorithm 1 then gives up (`Unclassified`).
//! The paper's discussion proposes a lightweight rescue: the Egress LER
//! is, by the IOTP's definition, a convergence point shared by every
//! branch; assuming routers answer with the incoming interface of the
//! probe over point-to-point links, the *penultimate* hops of the
//! branches are upstream interfaces feeding that shared point and can
//! serve as a virtual common IP. Comparing the labels quoted there
//! separates Mono-FEC (one label) from Multi-FEC (distinct labels).
//!
//! The heuristic is opt-in — the paper itself reports results *without*
//! it, noting it mainly removes the Unclassified class — and is exposed
//! here as [`classify_with_alias_heuristic`].

use crate::classify::{classify_iotp, Class, Classification, MonoFecKind};
use crate::label::Label;
use crate::lsp::Iotp;
use std::collections::BTreeSet;

/// Classifies an IOTP with Algorithm 1 and, when that yields
/// `Unclassified`, retries using the penultimate hops of every branch as
/// a virtual common point.
///
/// Branches without any hop (possible after UHP egress trimming) keep
/// the IOTP unclassified: there is no penultimate observation to use.
pub fn classify_with_alias_heuristic(iotp: &Iotp) -> Classification {
    let base = classify_iotp(iotp);
    if base.class != Class::Unclassified {
        return base;
    }
    let mut penultimate_labels: BTreeSet<Vec<Label>> = BTreeSet::new();
    for branch in &iotp.branches {
        match branch.hops.last() {
            Some(h) => {
                penultimate_labels.insert(h.labels());
            }
            None => return base,
        }
    }
    let class = if penultimate_labels.len() > 1 {
        Class::MultiFec
    } else {
        // A single label at the virtual convergence point: ECMP
        // Mono-FEC. The subclass follows the standard rule.
        let sigs: BTreeSet<Vec<Vec<Label>>> = iotp
            .branches
            .iter()
            .map(|b| b.hops.iter().map(|h| h.labels()).collect())
            .collect();
        if sigs.len() <= 1 {
            Class::MonoFec(MonoFecKind::ParallelLinks)
        } else {
            Class::MonoFec(MonoFecKind::RoutersDisjoint)
        }
    };
    Classification { class, common_ips: 1, multi_label_ips: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{LabelStack, Lse};
    use crate::lsp::{Asn, IotpKey, Lsp, LspHop};
    use std::net::Ipv4Addr;

    fn ip(o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, o)
    }

    fn lsp(hops: &[(u8, u32)], dst_asn: u32) -> Lsp {
        Lsp {
            asn: Asn(65000),
            ingress: ip(1),
            egress: ip(9),
            hops: hops
                .iter()
                .map(|&(o, l)| {
                    LspHop::new(ip(o), LabelStack::from_entries(&[Lse::transit(l, 255)]))
                })
                .collect(),
            dst: Ipv4Addr::new(192, 0, 2, 1),
            dst_asn: Some(Asn(dst_asn)),
        }
    }

    fn iotp_of(lsps: &[Lsp]) -> Iotp {
        let mut iotp = Iotp::new(IotpKey { asn: Asn(65000), ingress: ip(1), egress: ip(9) });
        for l in lsps {
            iotp.absorb(l);
        }
        iotp
    }

    #[test]
    fn non_unclassified_results_pass_through() {
        let iotp = iotp_of(&[lsp(&[(2, 100)], 1), lsp(&[(2, 100)], 2)]);
        assert_eq!(classify_with_alias_heuristic(&iotp).class, Class::MonoLsp);
    }

    #[test]
    fn rescue_to_multi_fec() {
        // No common IP; penultimate hops (the only hops) show distinct
        // labels => the virtual common point reveals multiple FECs.
        let iotp = iotp_of(&[lsp(&[(2, 100)], 1), lsp(&[(4, 101)], 2)]);
        assert_eq!(classify_iotp(&iotp).class, Class::Unclassified);
        assert_eq!(classify_with_alias_heuristic(&iotp).class, Class::MultiFec);
    }

    #[test]
    fn rescue_to_mono_fec_parallel() {
        // Same single label on both branches, differing addresses:
        // aliases on parallel links.
        let iotp = iotp_of(&[lsp(&[(2, 100)], 1), lsp(&[(4, 100)], 2)]);
        assert_eq!(classify_iotp(&iotp).class, Class::Unclassified);
        assert_eq!(
            classify_with_alias_heuristic(&iotp).class,
            Class::MonoFec(MonoFecKind::ParallelLinks)
        );
    }

    #[test]
    fn rescue_to_mono_fec_disjoint() {
        // Penultimate labels agree but upstream hops differ in both
        // labels and addresses.
        let iotp = iotp_of(&[lsp(&[(2, 50), (3, 100)], 1), lsp(&[(4, 51), (5, 100)], 2)]);
        assert_eq!(classify_iotp(&iotp).class, Class::Unclassified);
        assert_eq!(
            classify_with_alias_heuristic(&iotp).class,
            Class::MonoFec(MonoFecKind::RoutersDisjoint)
        );
    }
}
