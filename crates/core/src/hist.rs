//! A small integer histogram used by the evaluation harnesses
//! (PDF plots such as Figs. 7–9, distribution summaries, etc.).

use std::collections::BTreeMap;

/// A histogram over non-negative integer values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation of `value`.
    pub fn add(&mut self, value: u64) {
        *self.counts.entry(value).or_default() += 1;
        self.total += 1;
    }

    /// Adds `n` observations of `value`.
    pub fn add_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(value).or_default() += n;
        self.total += n;
    }

    /// Number of observations of exactly `value`.
    pub fn count(&self, value: u64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Probability mass at `value` (0.0 for an empty histogram).
    pub fn pdf(&self, value: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Cumulative probability mass at values `<= value`.
    pub fn cdf(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let below: u64 = self.counts.range(..=value).map(|(_, c)| c).sum();
        below as f64 / self.total as f64
    }

    /// Probability mass at values `>= value` (used for the `≥ 10`
    /// catch-all bin of Fig. 8).
    pub fn tail(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let above: u64 = self.counts.range(value..).map(|(_, c)| c).sum();
        above as f64 / self.total as f64
    }

    /// Largest observed value, if any.
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Smallest observed value, if any.
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// Mean of the observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let sum: u128 = self.counts.iter().map(|(&v, &c)| v as u128 * c as u128).sum();
        Some(sum as f64 / self.total as f64)
    }

    /// The smallest value `v` with `cdf(v) >= q` (`q` clamped to
    /// `[0, 1]`); `None` when empty. `quantile(0.5)` is the median.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (&v, &c) in &self.counts {
            seen += c;
            if seen >= target {
                return Some(v);
            }
        }
        self.max()
    }

    /// Complementary CDF: probability mass at values strictly greater
    /// than `value`.
    pub fn ccdf(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        1.0 - self.cdf(value)
    }

    /// Iterates over `(value, count)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (v, c) in other.iter() {
            self.add_n(v, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.pdf(0), 0.0);
        assert_eq!(h.cdf(10), 0.0);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn pdf_cdf_tail() {
        let mut h = Histogram::new();
        h.add(1);
        h.add(1);
        h.add(2);
        h.add(10);
        assert_eq!(h.total(), 4);
        assert!((h.pdf(1) - 0.5).abs() < 1e-12);
        assert!((h.cdf(2) - 0.75).abs() < 1e-12);
        assert!((h.tail(2) - 0.5).abs() < 1e-12);
        assert_eq!(h.max(), Some(10));
        assert_eq!(h.min(), Some(1));
        assert!((h.mean().unwrap() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 2, 3, 10] {
            h.add(v);
        }
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(2));
        assert_eq!(h.quantile(0.8), Some(3));
        assert_eq!(h.quantile(1.0), Some(10));
        assert_eq!(Histogram::new().quantile(0.5), None);
        assert!((h.ccdf(2) - 0.4).abs() < 1e-12);
        assert_eq!(h.ccdf(10), 0.0);
    }

    #[test]
    fn merge_and_add_n() {
        let mut a = Histogram::new();
        a.add_n(5, 3);
        a.add_n(7, 0); // no-op
        let mut b = Histogram::new();
        b.add(5);
        b.add(6);
        a.merge(&b);
        assert_eq!(a.count(5), 4);
        assert_eq!(a.count(6), 1);
        assert_eq!(a.count(7), 0);
        assert_eq!(a.total(), 5);
    }
}
