//! Per-trace quarantine: structural validation of degraded input.
//!
//! The LPR filters handle *semantically* degraded traces — anonymous
//! hops feed IncompleteLsp, hidden or truncated label stacks surface as
//! Unclassified IOTPs. What they cannot handle is *structurally* broken
//! input: duplicated or reordered replies violate the
//! strictly-increasing-TTL invariant every downstream stage assumes.
//! Such traces are quarantined at ingest — counted, attributed a
//! [`QuarantineReason`], and excluded — instead of corrupting the run
//! or panicking it. The [`DegradedReport`] carried on
//! [`crate::pipeline::PipelineOutput`] reconciles exactly:
//! `kept + quarantined == traces ingested`.

use crate::trace::Trace;
use std::collections::BTreeMap;

/// Most hops a credible traceroute can hold (TTL is a `u8`; anything
/// longer than 255 entries cannot be a single TTL ladder).
pub const MAX_TRACE_HOPS: usize = 255;

/// Deepest quoted label stack accepted (RFC 4950 encodes 4-byte LSEs in
/// a length-capped extension object; real stacks stay in single
/// digits — 32 already indicates corruption).
pub const MAX_QUOTED_STACK_DEPTH: usize = 32;

/// Why a trace (or a whole shard) was quarantined at ingest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum QuarantineReason {
    /// More hops than a TTL ladder can produce.
    TooManyHops,
    /// Two hops answering the same probe TTL (duplicated reply).
    DuplicateTtl,
    /// Probe TTLs not in increasing order (reordered replies).
    NonMonotonicTtl,
    /// A quoted label stack deeper than [`MAX_QUOTED_STACK_DEPTH`].
    ExcessStackDepth,
    /// The trace sat in a parallel ingest shard whose worker panicked;
    /// the whole shard is quarantined rather than tearing down the run.
    PoisonedShard,
}

impl QuarantineReason {
    /// Every reason, in display order.
    pub const ALL: [QuarantineReason; 5] = [
        QuarantineReason::TooManyHops,
        QuarantineReason::DuplicateTtl,
        QuarantineReason::NonMonotonicTtl,
        QuarantineReason::ExcessStackDepth,
        QuarantineReason::PoisonedShard,
    ];

    /// Short machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            QuarantineReason::TooManyHops => "too_many_hops",
            QuarantineReason::DuplicateTtl => "duplicate_ttl",
            QuarantineReason::NonMonotonicTtl => "non_monotonic_ttl",
            QuarantineReason::ExcessStackDepth => "excess_stack_depth",
            QuarantineReason::PoisonedShard => "poisoned_shard",
        }
    }

    /// The telemetry counter this reason tallies under (a constant from
    /// [`lpr_obs::names`], the workspace metric vocabulary).
    pub fn counter_name(self) -> &'static str {
        match self {
            QuarantineReason::TooManyHops => lpr_obs::names::QUARANTINE_TOO_MANY_HOPS,
            QuarantineReason::DuplicateTtl => lpr_obs::names::QUARANTINE_DUPLICATE_TTL,
            QuarantineReason::NonMonotonicTtl => lpr_obs::names::QUARANTINE_NON_MONOTONIC_TTL,
            QuarantineReason::ExcessStackDepth => lpr_obs::names::QUARANTINE_EXCESS_STACK_DEPTH,
            QuarantineReason::PoisonedShard => lpr_obs::names::QUARANTINE_POISONED_SHARD,
        }
    }
}

/// Checks the structural invariants every pipeline stage assumes.
///
/// Pure and deterministic, so the sequential and parallel ingest paths
/// quarantine exactly the same traces.
pub fn validate_trace(trace: &Trace) -> Result<(), QuarantineReason> {
    if trace.hops.len() > MAX_TRACE_HOPS {
        return Err(QuarantineReason::TooManyHops);
    }
    let mut last: Option<u8> = None;
    for hop in &trace.hops {
        if hop.stack.depth() > MAX_QUOTED_STACK_DEPTH {
            return Err(QuarantineReason::ExcessStackDepth);
        }
        if let Some(prev) = last {
            if hop.probe_ttl == prev {
                return Err(QuarantineReason::DuplicateTtl);
            }
            if hop.probe_ttl < prev {
                return Err(QuarantineReason::NonMonotonicTtl);
            }
        }
        last = Some(hop.probe_ttl);
    }
    Ok(())
}

/// Kept/quarantined accounting for one ingest run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegradedReport {
    /// Traces that passed validation and entered the pipeline.
    pub kept: u64,
    /// Traces excluded, per reason.
    pub quarantined: BTreeMap<QuarantineReason, u64>,
}

impl DegradedReport {
    /// Total traces quarantined.
    pub fn quarantined_total(&self) -> u64 {
        self.quarantined.values().sum()
    }

    /// Total traces seen (kept + quarantined).
    pub fn ingested(&self) -> u64 {
        self.kept + self.quarantined_total()
    }

    /// Whether nothing was quarantined.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Counts one quarantined trace.
    pub fn note(&mut self, reason: QuarantineReason) {
        *self.quarantined.entry(reason).or_default() += 1;
    }

    /// Counts `n` quarantined traces under one reason.
    pub fn note_many(&mut self, reason: QuarantineReason, n: u64) {
        if n > 0 {
            *self.quarantined.entry(reason).or_default() += n;
        }
    }

    /// Accumulates another report (shard merge: plain sums).
    pub fn merge(&mut self, other: &DegradedReport) {
        self.kept += other.kept;
        for (reason, n) in &other.quarantined {
            *self.quarantined.entry(*reason).or_default() += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Lse;
    use crate::trace::Hop;
    use std::net::Ipv4Addr;

    fn ip(o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, o)
    }

    fn valid_trace() -> Trace {
        let mut t = Trace::new(ip(1), ip(200));
        t.push_hop(Hop::responsive(1, ip(2)));
        t.push_hop(Hop::labelled(3, ip(3), &[Lse::transit(100, 254)]));
        t.push_hop(Hop::anonymous(4));
        t
    }

    #[test]
    fn valid_traces_pass() {
        assert_eq!(validate_trace(&valid_trace()), Ok(()));
        assert_eq!(validate_trace(&Trace::new(ip(1), ip(2))), Ok(()));
    }

    #[test]
    fn duplicate_ttl_is_caught() {
        let mut t = valid_trace();
        t.hops.push(t.hops[2].clone());
        assert_eq!(validate_trace(&t), Err(QuarantineReason::DuplicateTtl));
    }

    #[test]
    fn reordered_ttls_are_caught() {
        let mut t = valid_trace();
        t.hops.swap(0, 1);
        assert_eq!(validate_trace(&t), Err(QuarantineReason::NonMonotonicTtl));
    }

    #[test]
    fn excess_stack_depth_is_caught() {
        let mut t = valid_trace();
        let deep: Vec<Lse> = (0..40).map(|i| Lse::transit(i, 254)).collect();
        t.hops[1] = Hop::labelled(3, ip(3), &deep);
        assert_eq!(validate_trace(&t), Err(QuarantineReason::ExcessStackDepth));
    }

    #[test]
    fn too_many_hops_is_caught() {
        let mut t = Trace::new(ip(1), ip(200));
        t.hops = (0..300u32).map(|i| Hop::anonymous((i % 250 + 1) as u8)).collect();
        assert_eq!(validate_trace(&t), Err(QuarantineReason::TooManyHops));
    }

    #[test]
    fn report_reconciles_and_merges() {
        let mut a = DegradedReport { kept: 5, ..Default::default() };
        a.note(QuarantineReason::DuplicateTtl);
        a.note(QuarantineReason::DuplicateTtl);
        a.note_many(QuarantineReason::PoisonedShard, 3);
        a.note_many(QuarantineReason::TooManyHops, 0);
        assert_eq!(a.quarantined_total(), 5);
        assert_eq!(a.ingested(), 10);
        assert!(!a.is_clean());

        let mut b = DegradedReport { kept: 2, ..Default::default() };
        b.note(QuarantineReason::DuplicateTtl);
        b.merge(&a);
        assert_eq!(b.kept, 7);
        assert_eq!(b.quarantined[&QuarantineReason::DuplicateTtl], 3);
        assert_eq!(b.ingested(), 13);
        assert!(DegradedReport::default().is_clean());
    }
}
