//! Per-cycle, per-AS aggregation (the raw material of §4's figures).
//!
//! [`CycleReport`] condenses one measurement cycle into the quantities
//! the paper plots: the fraction of traces crossing an explicit tunnel
//! (Fig. 5a), MPLS vs non-MPLS address tallies globally (Fig. 5b) and
//! per AS (Table 2), and classified-IOTP tallies per AS (Figs. 10–15).

pub use crate::filter::AsMapper;
use crate::lsp::Asn;
use crate::pipeline::{ClassCounts, PipelineOutput};
use crate::trace::Trace;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Address usage split: addresses seen quoting MPLS labels vs the rest.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IpUsage {
    /// Addresses observed at label-bearing hops.
    pub mpls: BTreeSet<Ipv4Addr>,
    /// Addresses observed only at unlabelled hops.
    pub non_mpls: BTreeSet<Ipv4Addr>,
}

impl IpUsage {
    /// Collects address usage over raw traces (pre-filtering, as in
    /// Fig. 5b).
    pub fn of_traces<'a>(traces: impl IntoIterator<Item = &'a Trace>) -> IpUsage {
        let mut mpls = BTreeSet::new();
        let mut all = BTreeSet::new();
        for t in traces {
            for h in t.responsive_hops() {
                let addr = h.addr.expect("responsive");
                all.insert(addr);
                if h.is_labelled() {
                    mpls.insert(addr);
                }
            }
        }
        let non_mpls = all.difference(&mpls).copied().collect();
        IpUsage { mpls, non_mpls }
    }
}

/// Per-AS summary for one cycle.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AsCycleStats {
    /// Classified-IOTP tallies.
    pub classes: ClassCounts,
    /// Addresses of this AS involved in (filtered) MPLS tunnels.
    pub mpls_ips: usize,
    /// Addresses of this AS seen in the cycle but not in MPLS tunnels.
    pub non_mpls_ips: usize,
}

/// Everything the evaluation needs from one cycle.
#[derive(Clone, Debug, Default)]
pub struct CycleReport {
    /// Total traces in the cycle.
    pub traces: usize,
    /// Traces crossing at least one explicit tunnel (Fig. 5a numerator).
    pub traces_with_mpls: usize,
    /// Global address usage, pre-filtering (Fig. 5b).
    pub ip_usage_mpls: usize,
    /// Global non-MPLS address count, pre-filtering (Fig. 5b).
    pub ip_usage_non_mpls: usize,
    /// Per-AS statistics, post-filtering (Table 2, Figs. 10–15).
    pub per_as: BTreeMap<Asn, AsCycleStats>,
    /// ASes tagged dynamic this cycle.
    pub dynamic_ases: BTreeSet<Asn>,
}

impl CycleReport {
    /// Builds the report for one cycle from the raw traces and the
    /// pipeline output computed over them.
    ///
    /// Per-AS MPLS addresses are counted *after filtering* (as Table 2
    /// does): they are the LER/LSR addresses of the classified IOTPs.
    /// Per-AS non-MPLS addresses are every other address of the AS seen
    /// in the cycle's traces.
    pub fn build(traces: &[Trace], output: &PipelineOutput, mapper: &dyn AsMapper) -> Self {
        let traces_with_mpls = traces.iter().filter(|t| t.has_mpls()).count();
        let usage = IpUsage::of_traces(traces.iter());

        // Addresses of filtered MPLS tunnels, per AS.
        let mut mpls_per_as: BTreeMap<Asn, BTreeSet<Ipv4Addr>> = BTreeMap::new();
        for (iotp, _) in &output.iotps {
            let set = mpls_per_as.entry(iotp.key.asn).or_default();
            set.insert(iotp.key.ingress);
            set.insert(iotp.key.egress);
            set.extend(iotp.lsr_addrs());
        }

        // Every address of the cycle, per AS.
        let mut seen_per_as: BTreeMap<Asn, BTreeSet<Ipv4Addr>> = BTreeMap::new();
        for t in traces {
            for h in t.responsive_hops() {
                let addr = h.addr.expect("responsive");
                if let Some(asn) = mapper.asn_of(addr) {
                    seen_per_as.entry(asn).or_default().insert(addr);
                }
            }
        }

        let mut per_as: BTreeMap<Asn, AsCycleStats> = BTreeMap::new();
        for asn in output.ases() {
            let mpls = mpls_per_as.get(&asn).cloned().unwrap_or_default();
            let seen = seen_per_as.get(&asn).cloned().unwrap_or_default();
            let stats = per_as.entry(asn).or_default();
            stats.classes = output.class_counts_for(asn);
            stats.mpls_ips = mpls.len();
            stats.non_mpls_ips = seen.difference(&mpls).count();
        }
        // ASes seen in traces but with no classified IOTP still get a
        // row (all-zero classes) so longitudinal plots show the gaps.
        for (asn, seen) in &seen_per_as {
            per_as.entry(*asn).or_insert_with(|| AsCycleStats {
                classes: ClassCounts::default(),
                mpls_ips: 0,
                non_mpls_ips: seen.len(),
            });
        }

        CycleReport {
            traces: traces.len(),
            traces_with_mpls,
            ip_usage_mpls: usage.mpls.len(),
            ip_usage_non_mpls: usage.non_mpls.len(),
            per_as,
            dynamic_ases: output.dynamic_ases.clone(),
        }
    }

    /// Fraction of traces crossing at least one explicit tunnel
    /// (Fig. 5a; 0.0 for an empty cycle).
    pub fn mpls_trace_fraction(&self) -> f64 {
        if self.traces == 0 {
            0.0
        } else {
            self.traces_with_mpls as f64 / self.traces as f64
        }
    }
}

/// Writes rows as CSV into a string: a tiny hand-rolled emitter — every
/// value the harnesses output is numeric or a bare identifier, so no
/// quoting is required.
pub fn to_csv<S: AsRef<str>>(header: &[&str], rows: &[Vec<S>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let cells: Vec<&str> = row.iter().map(|c| c.as_ref()).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Lse;
    use crate::pipeline::Pipeline;
    use crate::trace::Hop;

    fn ip(a: u8, o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, a, 0, o)
    }

    fn mapper(addr: Ipv4Addr) -> Option<Asn> {
        let o = addr.octets();
        match o[0] {
            10 => Some(Asn(o[1] as u32)),
            192 => Some(Asn(100)),
            198 => Some(Asn(101)),
            _ => None,
        }
    }

    fn mpls_trace(dst: Ipv4Addr, labels: [u32; 2]) -> Trace {
        let mut t = Trace::new(Ipv4Addr::new(203, 0, 113, 5), dst);
        t.push_hop(Hop::responsive(1, ip(1, 1)));
        t.push_hop(Hop::labelled(2, ip(1, 2), &[Lse::transit(labels[0], 254)]));
        t.push_hop(Hop::labelled(3, ip(1, 3), &[Lse::transit(labels[1], 253)]));
        t.push_hop(Hop::responsive(4, ip(1, 9)));
        t.push_hop(Hop::responsive(5, dst));
        t.reached = true;
        t
    }

    fn plain_trace(dst: Ipv4Addr) -> Trace {
        let mut t = Trace::new(Ipv4Addr::new(203, 0, 113, 5), dst);
        t.push_hop(Hop::responsive(1, ip(2, 1)));
        t.push_hop(Hop::responsive(2, dst));
        t.reached = true;
        t
    }

    #[test]
    fn ip_usage_classifies_addresses() {
        let traces =
            [mpls_trace(Ipv4Addr::new(192, 0, 2, 7), [100, 200]), plain_trace(ip(3, 7))];
        let usage = IpUsage::of_traces(traces.iter());
        assert_eq!(usage.mpls.len(), 2);
        // ingress, egress, dst of trace 1, two hops of trace 2
        assert_eq!(usage.non_mpls.len(), 5);
    }

    #[test]
    fn cycle_report_counts() {
        let traces = vec![
            mpls_trace(Ipv4Addr::new(192, 0, 2, 7), [100, 200]),
            mpls_trace(Ipv4Addr::new(198, 51, 100, 7), [101, 201]),
            plain_trace(ip(3, 7)),
        ];
        let keys = Pipeline::snapshot_keys(&traces);
        let out = Pipeline::default().run(&traces, &mapper, &[keys]);
        let report = CycleReport::build(&traces, &out, &mapper);
        assert_eq!(report.traces, 3);
        assert_eq!(report.traces_with_mpls, 2);
        assert!((report.mpls_trace_fraction() - 2.0 / 3.0).abs() < 1e-9);
        let as1 = &report.per_as[&Asn(1)];
        assert_eq!(as1.classes.multi_fec, 1);
        // ingress + egress + 2 LSRs
        assert_eq!(as1.mpls_ips, 4);
        // AS2 appears with zero classes.
        assert_eq!(report.per_as[&Asn(2)].classes.total(), 0);
        assert_eq!(report.per_as[&Asn(2)].non_mpls_ips, 1);
    }

    #[test]
    fn csv_emitter() {
        let csv = to_csv(&["a", "b"], &[vec!["1", "2"], vec!["3", "4"]]);
        assert_eq!(csv, "a,b\n1,2\n3,4\n");
    }
}
