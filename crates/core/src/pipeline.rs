//! End-to-end LPR pipeline: traces in, classified IOTPs out (Fig. 3).
//!
//! [`Pipeline::run`] chains tunnel extraction, the five filters and the
//! classification, and returns both the classified IOTPs and the
//! bookkeeping needed by the paper's evaluation (Table 1 survival
//! proportions, dynamic-AS tags, per-class tallies).

use crate::classify::{classify_iotp, Class, Classification};
use crate::filter::{
    attribute_and_filter, build_iotps, iotp_kept, lsp_keys_of_tunnels, partition_by_flags,
    persistent_flags, reinject_dynamic, transit_diversity_keys, AsMapper, FilterConfig,
    FilterReport, FilterStage,
};
use crate::lsp::{Asn, Iotp, IotpKey, Lsp, LspKey};
use crate::quarantine::{validate_trace, DegradedReport};
use crate::trace::Trace;
use crate::tunnel::{extract_tunnels_into, RawTunnel};
use std::collections::BTreeSet;

/// The LPR pipeline.
#[derive(Clone, Debug, Default)]
pub struct Pipeline {
    /// Filter configuration.
    pub config: FilterConfig,
    /// Classify `Unclassified` IOTPs with the §5 penultimate-hop alias
    /// heuristic ([`crate::alias`]). Off by default — the paper
    /// reports its results without it.
    pub alias_rescue: bool,
    /// Skip the TransitDiversity filter (ablation support): IOTPs
    /// reaching a single destination AS are then kept and classified.
    pub skip_transit_diversity: bool,
}

/// Everything the pipeline produced for one measurement cycle.
///
/// `PartialEq` is structural over the full output (classified IOTPs in
/// order, report, dynamic ASes): the parallel pipeline's determinism
/// guarantee is checked as `seq_output == par_output`.
#[derive(Debug, PartialEq)]
pub struct PipelineOutput {
    /// Classified IOTPs, ordered by key.
    pub iotps: Vec<(Iotp, Classification)>,
    /// LSP survival accounting across the filters (Table 1).
    pub report: FilterReport,
    /// ASes tagged dynamic by the Persistence filter (§4.5).
    pub dynamic_ases: BTreeSet<Asn>,
    /// Kept/quarantined trace accounting from ingest (all-kept when the
    /// run started from pre-extracted tunnels).
    pub degraded: DegradedReport,
}

impl PipelineOutput {
    /// Tally of IOTPs per class, in the paper's display order
    /// (Mono-LSP, Multi-FEC, Mono-FEC, Unclassified).
    pub fn class_counts(&self) -> ClassCounts {
        let mut counts = ClassCounts::default();
        for (_, c) in &self.iotps {
            counts.add(c.class);
        }
        counts
    }

    /// Tally of IOTPs per class restricted to one AS.
    pub fn class_counts_for(&self, asn: Asn) -> ClassCounts {
        let mut counts = ClassCounts::default();
        for (iotp, c) in &self.iotps {
            if iotp.key.asn == asn {
                counts.add(c.class);
            }
        }
        counts
    }

    /// The ASes owning at least one classified IOTP.
    pub fn ases(&self) -> BTreeSet<Asn> {
        self.iotps.iter().map(|(i, _)| i.key.asn).collect()
    }
}

/// Per-class IOTP tallies, as plotted in Figs. 6b and 10–15.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// Mono-LSP IOTPs.
    pub mono_lsp: usize,
    /// Multi-FEC IOTPs.
    pub multi_fec: usize,
    /// ECMP Mono-FEC IOTPs, parallel-links subclass.
    pub mono_fec_parallel: usize,
    /// ECMP Mono-FEC IOTPs, routers-disjoint subclass.
    pub mono_fec_disjoint: usize,
    /// Unclassified IOTPs.
    pub unclassified: usize,
}

impl ClassCounts {
    /// Adds one IOTP of the given class.
    pub fn add(&mut self, class: Class) {
        use crate::classify::MonoFecKind::*;
        match class {
            Class::MonoLsp => self.mono_lsp += 1,
            Class::MultiFec => self.multi_fec += 1,
            Class::MonoFec(ParallelLinks) => self.mono_fec_parallel += 1,
            Class::MonoFec(RoutersDisjoint) => self.mono_fec_disjoint += 1,
            Class::Unclassified => self.unclassified += 1,
        }
    }

    /// Total ECMP Mono-FEC IOTPs (both subclasses).
    pub fn mono_fec(&self) -> usize {
        self.mono_fec_parallel + self.mono_fec_disjoint
    }

    /// Total IOTPs.
    pub fn total(&self) -> usize {
        self.mono_lsp + self.multi_fec + self.mono_fec() + self.unclassified
    }

    /// `(mono_lsp, multi_fec, mono_fec, unclassified)` as fractions of
    /// the total; all zeros when the tally is empty.
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total();
        if t == 0 {
            return [0.0; 4];
        }
        let t = t as f64;
        [
            self.mono_lsp as f64 / t,
            self.multi_fec as f64 / t,
            self.mono_fec() as f64 / t,
            self.unclassified as f64 / t,
        ]
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &ClassCounts) {
        self.mono_lsp += other.mono_lsp;
        self.multi_fec += other.multi_fec;
        self.mono_fec_parallel += other.mono_fec_parallel;
        self.mono_fec_disjoint += other.mono_fec_disjoint;
        self.unclassified += other.unclassified;
    }
}

/// The Persistence filter's re-observation window: one LSP key set per
/// future snapshot, either held in memory (the default at demo scale)
/// or spilled to sorted on-disk files by [`crate::spill::KeySpiller`]
/// (the out-of-core path, where a window of `BTreeSet`s would defeat
/// bounded-memory ingest).
///
/// Both forms answer the same membership question over the same keys,
/// so [`Pipeline::finish_stages_windowed`] produces identical output
/// either way.
#[derive(Clone, Copy, Debug)]
pub enum PersistenceWindow<'a> {
    /// In-memory per-snapshot key sets.
    Mem(&'a [BTreeSet<LspKey>]),
    /// Spilled per-snapshot key files (see [`crate::spill`]).
    Spilled(&'a [crate::spill::SpilledKeys]),
}

/// One measurement cycle's contribution to an [`IngestState`]: the
/// provenance record that makes merged states *evictable*.
///
/// An `IngestState` built from several cycles keeps, per cycle, how
/// many of its `lsps` (a contiguous run, in merge order) and how much
/// of every aggregate count came from that cycle, so
/// [`IngestState::evict_before`] can age a cycle out of the state by
/// dropping its LSP run and subtracting its counts — no recompute over
/// the surviving cycles.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CycleSegment {
    /// The cycle this segment's traces belong to (0 for untagged
    /// single-shot runs).
    pub cycle: u64,
    /// How many of the owning state's `lsps` (a contiguous run at this
    /// segment's position) came from this cycle.
    pub lsps: usize,
    /// Traces ingested for this cycle.
    pub traces_in: u64,
    /// Tunnels entering the filter pipeline for this cycle.
    pub input: usize,
    /// Count after IncompleteLsp.
    pub after_incomplete: usize,
    /// Count after IntraAs.
    pub after_intra_as: usize,
    /// Tunnel-extraction time, µs.
    pub extraction_us: u64,
    /// Attribution/filter time, µs.
    pub attribution_us: u64,
    /// Kept/quarantined trace accounting for this cycle.
    pub degraded: DegradedReport,
}

impl CycleSegment {
    /// Folds `other` (same cycle) into this segment.
    fn absorb(&mut self, other: &CycleSegment) {
        debug_assert_eq!(self.cycle, other.cycle);
        self.lsps += other.lsps;
        self.traces_in += other.traces_in;
        self.input += other.input;
        self.after_incomplete += other.after_incomplete;
        self.after_intra_as += other.after_intra_as;
        self.extraction_us = self.extraction_us.saturating_add(other.extraction_us);
        self.attribution_us = self.attribution_us.saturating_add(other.attribution_us);
        self.degraded.merge(&other.degraded);
    }
}

/// Accumulated state of the pipeline's *ingest* half: tunnel extraction
/// plus the fused per-LSP filters (IncompleteLsp, IntraAS, TargetAS).
///
/// Unlike [`crate::stream::CycleAccumulator`] this is an owned,
/// `Send`-able value, so parallel workers can each build one over a
/// shard of traces and hand it back across the thread boundary;
/// [`IngestState::merge`] combines shards. Merging in shard order over
/// contiguous shards reproduces the sequential ingest exactly (counts
/// are sums; `lsps` concatenates in input order).
///
/// The state is also **windowed**: [`IngestState::tag_cycle`] stamps a
/// freshly-ingested state with its cycle id, merges accumulate the
/// per-cycle provenance in `segments`, and
/// [`IngestState::evict_before`] drops whole cycles again — the
/// long-running `lpr serve` reconcile loop keeps one such state per
/// window and never recomputes the survivors.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IngestState {
    /// LSPs surviving the per-LSP filters, in input order.
    pub lsps: Vec<Lsp>,
    /// Traces ingested (0 when the caller started from raw tunnels).
    pub traces_in: u64,
    /// Tunnels entering the filter pipeline.
    pub input: usize,
    /// Count after IncompleteLsp.
    pub after_incomplete: usize,
    /// Count after IntraAs.
    pub after_intra_as: usize,
    /// Accumulated tunnel-extraction time, µs (CPU time when summed
    /// across parallel workers).
    pub extraction_us: u64,
    /// Accumulated attribution/filter time, µs (ditto).
    pub attribution_us: u64,
    /// Kept/quarantined trace accounting for this shard.
    pub degraded: DegradedReport,
    /// Per-cycle provenance, in merge order, tiling `lsps` exactly.
    /// Empty means "untagged": the whole state implicitly belongs to
    /// cycle 0 (the shape every single-shot constructor produces).
    pub segments: Vec<CycleSegment>,
}

impl IngestState {
    /// The whole state expressed as one [`CycleSegment`] of the given
    /// cycle.
    fn as_segment(&self, cycle: u64) -> CycleSegment {
        CycleSegment {
            cycle,
            lsps: self.lsps.len(),
            traces_in: self.traces_in,
            input: self.input,
            after_incomplete: self.after_incomplete,
            after_intra_as: self.after_intra_as,
            extraction_us: self.extraction_us,
            attribution_us: self.attribution_us,
            degraded: self.degraded.clone(),
        }
    }

    /// Whether nothing has been ingested into this state at all (the
    /// `Default` shape).
    pub fn is_untouched(&self) -> bool {
        self.lsps.is_empty()
            && self.traces_in == 0
            && self.input == 0
            && self.after_incomplete == 0
            && self.after_intra_as == 0
            && self.extraction_us == 0
            && self.attribution_us == 0
            && self.degraded == DegradedReport::default()
            && self.segments.is_empty()
    }

    /// Materialises the implicit cycle-0 segment of an untagged state,
    /// restoring the invariant that non-empty states carry provenance.
    fn normalize(&mut self) {
        if self.segments.is_empty() && !self.is_untouched() {
            self.segments = vec![self.as_segment(0)];
        }
    }

    /// Stamps the whole state as belonging to `cycle`, collapsing any
    /// existing provenance into one segment. Call this on the state a
    /// single cycle's ingest produced, before merging it into a
    /// windowed state.
    pub fn tag_cycle(&mut self, cycle: u64) {
        if self.is_untouched() {
            return;
        }
        self.segments = vec![self.as_segment(cycle)];
    }

    /// Cycle ids present in this state, ascending and unique.
    pub fn cycles(&self) -> Vec<u64> {
        if self.segments.is_empty() {
            return if self.is_untouched() { Vec::new() } else { vec![0] };
        }
        let mut ids: Vec<u64> = self.segments.iter().map(|s| s.cycle).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Appends another shard's (or cycle's) state; order of merges must
    /// follow shard (= input) order for LSP order to match the
    /// sequential run. Provenance concatenates, coalescing adjacent
    /// segments of the same cycle.
    pub fn merge(&mut self, mut other: IngestState) {
        self.normalize();
        other.normalize();
        self.lsps.append(&mut other.lsps);
        self.traces_in += other.traces_in;
        self.input += other.input;
        self.after_incomplete += other.after_incomplete;
        self.after_intra_as += other.after_intra_as;
        self.extraction_us = self.extraction_us.saturating_add(other.extraction_us);
        self.attribution_us = self.attribution_us.saturating_add(other.attribution_us);
        self.degraded.merge(&other.degraded);
        for seg in other.segments.drain(..) {
            match self.segments.last_mut() {
                Some(last) if last.cycle == seg.cycle => last.absorb(&seg),
                _ => self.segments.push(seg),
            }
        }
    }

    /// Ages out every cycle older than `cycle`: their LSP runs are
    /// dropped from `lsps` and their counts subtracted from the
    /// aggregates, leaving exactly the state a from-scratch merge of
    /// the surviving cycles would have built. Returns the evicted
    /// segments (empty when nothing aged out).
    pub fn evict_before(&mut self, cycle: u64) -> Vec<CycleSegment> {
        self.normalize();
        if self.segments.iter().all(|s| s.cycle >= cycle) {
            return Vec::new();
        }
        let segments = std::mem::take(&mut self.segments);
        let lsps = std::mem::take(&mut self.lsps);
        *self = IngestState::default();
        let mut evicted = Vec::new();
        let mut offset = 0usize;
        for seg in segments {
            let range = offset..offset + seg.lsps;
            offset = range.end;
            if seg.cycle >= cycle {
                let mut part = IngestState {
                    lsps: lsps[range].to_vec(),
                    traces_in: seg.traces_in,
                    input: seg.input,
                    after_incomplete: seg.after_incomplete,
                    after_intra_as: seg.after_intra_as,
                    extraction_us: seg.extraction_us,
                    attribution_us: seg.attribution_us,
                    degraded: seg.degraded.clone(),
                    segments: Vec::new(),
                };
                part.segments = vec![seg];
                self.merge(part);
            } else {
                evicted.push(seg);
            }
        }
        evicted
    }
}

impl Pipeline {
    /// Builds a pipeline with the given filter configuration.
    pub fn new(config: FilterConfig) -> Self {
        Pipeline { config, alias_rescue: false, skip_transit_diversity: false }
    }

    /// Enables the §5 penultimate-hop alias rescue for `Unclassified`
    /// IOTPs.
    pub fn with_alias_rescue(mut self) -> Self {
        self.alias_rescue = true;
        self
    }

    /// Runs LPR over one cycle of traces.
    ///
    /// `future_keys` carries, for each of the following snapshots of the
    /// same month (in order), the set of LSP keys observed there; it
    /// feeds the Persistence filter. Pass `&[]` (with
    /// `persistence_window = 0`) to skip persistence, as Fig. 16 does.
    pub fn run(
        &self,
        traces: &[Trace],
        mapper: &dyn AsMapper,
        future_keys: &[BTreeSet<LspKey>],
    ) -> PipelineOutput {
        self.run_recorded(traces, mapper, future_keys, None)
    }

    /// [`Pipeline::run`] with instrumentation: stage wall times and
    /// input/output tallies land in `recorder` (stage names match
    /// [`FilterStage::name`], so the telemetry reconciles with the
    /// returned [`FilterReport`]).
    pub fn run_recorded(
        &self,
        traces: &[Trace],
        mapper: &dyn AsMapper,
        future_keys: &[BTreeSet<LspKey>],
        recorder: Option<&lpr_obs::Recorder>,
    ) -> PipelineOutput {
        let sw = lpr_obs::Stopwatch::start();
        // Quarantine structurally-broken traces before extraction: the
        // tunnel extractor (and everything after) assumes the
        // strictly-increasing-TTL ladder `validate_trace` checks.
        let mut degraded = DegradedReport::default();
        let mut tunnels: Vec<RawTunnel> = Vec::new();
        for trace in traces {
            match validate_trace(trace) {
                Ok(()) => {
                    degraded.kept += 1;
                    extract_tunnels_into(trace, &mut tunnels);
                }
                Err(reason) => degraded.note(reason),
            }
        }
        let extraction_us = sw.elapsed_us();

        let sw = lpr_obs::Stopwatch::start();
        // IncompleteLsp + IntraAs + TargetAs (one fused pass).
        let attributed = attribute_and_filter(&tunnels, mapper);
        let ingest = IngestState {
            lsps: attributed.lsps,
            traces_in: traces.len() as u64,
            input: tunnels.len(),
            after_incomplete: attributed.after_incomplete,
            after_intra_as: attributed.after_intra_as,
            extraction_us,
            attribution_us: sw.elapsed_us(),
            degraded,
            segments: Vec::new(),
        };
        self.finish_stages(ingest, future_keys, recorder, lpr_par::ShardOptions::new(1))
    }

    /// Runs LPR over already-extracted tunnels (useful when the caller
    /// streams warts records and extracts incrementally).
    pub fn run_on_tunnels(
        &self,
        tunnels: &[RawTunnel],
        mapper: &dyn AsMapper,
        future_keys: &[BTreeSet<LspKey>],
    ) -> PipelineOutput {
        self.run_on_tunnels_recorded(tunnels, mapper, future_keys, None)
    }

    /// [`Pipeline::run_on_tunnels`] with instrumentation (see
    /// [`Pipeline::run_recorded`]).
    ///
    /// The three per-LSP filters (IncompleteLsp, IntraAS, TargetAS) run
    /// fused in a single pass; the pass's wall time is reported on the
    /// first stage and the fused stages report `wall_us = 0`. Counts
    /// are exact for every stage.
    pub fn run_on_tunnels_recorded(
        &self,
        tunnels: &[RawTunnel],
        mapper: &dyn AsMapper,
        future_keys: &[BTreeSet<LspKey>],
        recorder: Option<&lpr_obs::Recorder>,
    ) -> PipelineOutput {
        let sw = lpr_obs::Stopwatch::start();
        // IncompleteLsp + IntraAs + TargetAs (one fused pass).
        let attributed = attribute_and_filter(tunnels, mapper);
        let ingest = IngestState {
            lsps: attributed.lsps,
            traces_in: 0,
            input: tunnels.len(),
            after_incomplete: attributed.after_incomplete,
            after_intra_as: attributed.after_intra_as,
            extraction_us: 0,
            attribution_us: sw.elapsed_us(),
            degraded: DegradedReport::default(),
            segments: Vec::new(),
        };
        self.finish_stages(ingest, future_keys, recorder, lpr_par::ShardOptions::new(1))
    }

    /// The aggregate back half of the pipeline — TransitDiversity,
    /// Persistence, classification — over an already-ingested
    /// [`IngestState`].
    ///
    /// This is the **single** implementation both the sequential and
    /// parallel front ends funnel into (`opts` with one thread runs
    /// every shard inline on the caller's thread), so the two paths
    /// cannot drift: determinism of the parallel pipeline reduces to
    /// determinism of the shard merges.
    pub fn finish_stages(
        &self,
        ingest: IngestState,
        future_keys: &[BTreeSet<LspKey>],
        recorder: Option<&lpr_obs::Recorder>,
        opts: lpr_par::ShardOptions,
    ) -> PipelineOutput {
        match self.finish_stages_windowed(ingest, PersistenceWindow::Mem(future_keys), recorder, opts)
        {
            Ok(out) => out,
            // The in-memory window performs no IO.
            Err(e) => unreachable!("in-memory persistence cannot fail: {e}"),
        }
    }

    /// [`Pipeline::finish_stages`] generalised over the persistence
    /// window representation. The [`PersistenceWindow::Spilled`] form
    /// probes sorted on-disk key files (hence the `io::Result`); it
    /// computes flags in one aggregate merge-join pass, so no per-worker
    /// Persistence telemetry rows are emitted on that path.
    pub fn finish_stages_windowed(
        &self,
        ingest: IngestState,
        window: PersistenceWindow<'_>,
        recorder: Option<&lpr_obs::Recorder>,
        opts: lpr_par::ShardOptions,
    ) -> std::io::Result<PipelineOutput> {
        let parallel = opts.effective_threads() > 1;
        let disabled = lpr_obs::Tracer::disabled();
        let tracer = recorder.map_or(&disabled, |r| r.tracer());
        let mut report = FilterReport { input: ingest.input, ..Default::default() };
        report.remaining.insert(FilterStage::IncompleteLsp, ingest.after_incomplete);
        report.remaining.insert(FilterStage::IntraAs, ingest.after_intra_as);
        report.remaining.insert(FilterStage::TargetAs, ingest.lsps.len());
        let mut timer = lpr_obs::StageTimer::start();

        // TransitDiversity (per IOTP, counted in LSPs). `keep` is a
        // sorted key slice; membership below is a binary search and the
        // IOTP key is computed once per LSP.
        let td_span = tracer.span("stage:TransitDiversity");
        let keep: Vec<IotpKey> = if self.skip_transit_diversity {
            let mut keys: Vec<_> = ingest.lsps.iter().map(|l| l.iotp_key()).collect();
            keys.sort_unstable();
            keys.dedup();
            keys
        } else {
            transit_diversity_keys(&ingest.lsps)
        };
        let mut lsps = ingest.lsps;
        lsps.retain(|l| iotp_kept(&keep, l.iotp_key()));
        drop(td_span);
        let transit_us = lpr_obs::time::duration_us(timer.lap("transit_diversity"));
        report.remaining.insert(FilterStage::TransitDiversity, lsps.len());

        // Persistence. The expensive per-LSP half (LspKey construction +
        // window probes) shards across workers; the order-sensitive
        // partition and the per-AS dynamic reinjection stay sequential.
        let persist_span = tracer.span("stage:Persistence");
        // Per-worker Persistence rows `(worker, busy_us, input, output)`
        // — filled by the sharded in-memory path, empty for the spilled
        // aggregate pass.
        let mut persist_rows: Vec<(usize, u64, u64, u64)> = Vec::new();
        let flags: Vec<bool> = match window {
            PersistenceWindow::Mem(future_keys) => {
                let flags_run = lpr_par::map_shards_traced(
                    &lsps,
                    opts,
                    lpr_par::ShardTrace::new(tracer, persist_span.context()),
                    |_, shard| persistent_flags(shard, future_keys, &self.config),
                )
                .expect_ok();
                let mut flag_outputs = Vec::new();
                let mut flags: Vec<bool> = Vec::with_capacity(lsps.len());
                for (shard, out) in flags_run.outputs.into_iter().enumerate() {
                    flag_outputs.push((
                        shard,
                        out.iter().filter(|&&f| f).count() as u64,
                        out.len() as u64,
                    ));
                    flags.extend(out);
                }
                if parallel {
                    let mut per_worker: std::collections::BTreeMap<usize, (u64, u64)> =
                        std::collections::BTreeMap::new();
                    for (shard, kept_n, len) in &flag_outputs {
                        let w = flags_run.shard_workers.get(*shard).copied().unwrap_or(0);
                        let e = per_worker.entry(w).or_default();
                        e.0 += len;
                        e.1 += kept_n;
                    }
                    for (w, (input, output)) in &per_worker {
                        let busy = flags_run
                            .workers
                            .iter()
                            .find(|s| s.worker == *w)
                            .map_or(0, |s| s.busy_us);
                        persist_rows.push((*w, busy, *input, *output));
                    }
                }
                flags
            }
            PersistenceWindow::Spilled(snapshots) => {
                crate::spill::persistent_flags_spilled(&lsps, snapshots, &self.config)?
            }
        };
        let (kept, dropped) = partition_by_flags(lsps, &flags);
        let persisted = reinject_dynamic(kept, dropped, &self.config);
        drop(persist_span);
        let persistence_us = lpr_obs::time::duration_us(timer.lap("persistence"));
        report
            .remaining
            .insert(FilterStage::Persistence, persisted.strictly_persistent);

        // Classification. IOTPs are rebuilt from the persistent LSPs and
        // re-checked for transit diversity membership (an IOTP may have
        // lost branches to Persistence but it keeps its destination
        // diversity by construction of `keep`). `build_iotps` returns
        // them sorted and key-unique, so shards classify disjoint key
        // ranges and a shard-order concat preserves key order.
        let iotps = build_iotps(&persisted.lsps, &keep);
        let class_span = tracer.span("stage:Classification");
        let class_run = lpr_par::map_shards_traced(
            &iotps,
            opts,
            lpr_par::ShardTrace::new(tracer, class_span.context()),
            |_, shard| {
                shard
                    .iter()
                    .map(|iotp| {
                        if self.alias_rescue {
                            crate::alias::classify_with_alias_heuristic(iotp)
                        } else {
                            classify_iotp(iotp)
                        }
                    })
                    .collect::<Vec<Classification>>()
            },
        )
        .expect_ok();
        let classes: Vec<Classification> = class_run.outputs.into_iter().flatten().collect();
        let iotps: Vec<(Iotp, Classification)> = iotps.into_iter().zip(classes).collect();
        drop(class_span);
        let classification_us = lpr_obs::time::duration_us(timer.lap("classification"));

        let output = PipelineOutput {
            iotps,
            report,
            dynamic_ases: persisted.dynamic_ases,
            degraded: ingest.degraded,
        };
        if let Some(rec) = recorder {
            if ingest.traces_in > 0 {
                rec.record_stage(
                    "TunnelExtraction",
                    ingest.extraction_us,
                    ingest.traces_in,
                    output.report.input as u64,
                );
                rec.counter(lpr_obs::names::PIPELINE_TRACES).add(ingest.traces_in);
            }
            if output.degraded.ingested() > 0 {
                rec.counter(lpr_obs::names::PIPELINE_TRACES_KEPT).add(output.degraded.kept);
                rec.counter(lpr_obs::names::PIPELINE_TRACES_QUARANTINED)
                    .add(output.degraded.quarantined_total());
                for (reason, n) in &output.degraded.quarantined {
                    rec.counter(reason.counter_name()).add(*n);
                    // One warn event per reason, carrying the count —
                    // traces reconcile against the quarantine counters.
                    tracer.event(
                        tracer.default_parent(),
                        lpr_obs::Level::Warn,
                        "quarantine",
                        vec![
                            (
                                "reason".to_string(),
                                lpr_obs::FieldValue::Str(reason.name().to_string()),
                            ),
                            ("n".to_string(), lpr_obs::FieldValue::U64(*n)),
                        ],
                    );
                }
            }
            record_filter_stages(
                rec,
                &output.report,
                [ingest.attribution_us, 0, 0, transit_us, persistence_us],
            );
            rec.record_stage(
                "Classification",
                classification_us,
                output.report.remaining.get(&FilterStage::Persistence).copied().unwrap_or(0)
                    as u64,
                output.iotps.len() as u64,
            );
            if parallel {
                // Per-worker stage rows (`worker{N}/...`): inputs sum to
                // the aggregate stage's input, outputs to its output.
                for (w, busy, input, output) in &persist_rows {
                    rec.record_worker_stage(
                        *w,
                        FilterStage::Persistence.name(),
                        *busy,
                        *input,
                        *output,
                    );
                }
                for stat in &class_run.workers {
                    rec.record_worker_stage(
                        stat.worker,
                        "Classification",
                        stat.busy_us,
                        stat.items,
                        stat.items,
                    );
                }
            }
            rec.counter(lpr_obs::names::PIPELINE_TUNNELS).add(output.report.input as u64);
            rec.counter(lpr_obs::names::PIPELINE_IOTPS_CLASSIFIED).add(output.iotps.len() as u64);
            rec.counter(lpr_obs::names::PIPELINE_DYNAMIC_ASES).add(output.dynamic_ases.len() as u64);
        }
        Ok(output)
    }

    /// Convenience: the per-snapshot LSP key sets used by Persistence,
    /// computed from raw traces.
    pub fn snapshot_keys(traces: &[Trace]) -> BTreeSet<LspKey> {
        // Quarantined traces contribute no keys, matching what an ingest
        // run over the same snapshot would keep.
        let mut tunnels: Vec<RawTunnel> = Vec::new();
        for trace in traces {
            if validate_trace(trace).is_ok() {
                extract_tunnels_into(trace, &mut tunnels);
            }
        }
        lsp_keys_of_tunnels(&tunnels)
    }
}

/// Records one telemetry stage per filter, named after
/// [`FilterStage::name`] and chained so each stage's input is the
/// previous stage's output (starting from [`FilterReport::input`]).
/// `wall_us` gives the per-stage wall time in [`FilterStage::ALL`]
/// order.
pub fn record_filter_stages(
    recorder: &lpr_obs::Recorder,
    report: &FilterReport,
    wall_us: [u64; FilterStage::ALL.len()],
) {
    let mut input = report.input as u64;
    for (stage, us) in FilterStage::ALL.iter().zip(wall_us) {
        let output = report.remaining.get(stage).copied().unwrap_or(0) as u64;
        recorder.record_stage(stage.name(), us, input, output);
        input = output;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Lse;
    use crate::trace::Hop;
    use std::net::Ipv4Addr;

    fn ip(a: u8, o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, a, 0, o)
    }

    fn mapper(addr: Ipv4Addr) -> Option<Asn> {
        let o = addr.octets();
        match o[0] {
            10 => Some(Asn(o[1] as u32)),
            192 => Some(Asn(100)),
            198 => Some(Asn(101)),
            _ => None,
        }
    }

    /// A trace crossing AS1's two-LSR tunnel towards `dst`.
    fn mpls_trace(dst: Ipv4Addr, labels: [u32; 2], lsr_octets: [u8; 2]) -> Trace {
        let mut t = Trace::new(Ipv4Addr::new(203, 0, 113, 5), dst);
        t.push_hop(Hop::responsive(1, ip(1, 1)));
        t.push_hop(Hop::labelled(2, ip(1, lsr_octets[0]), &[Lse::transit(labels[0], 254)]));
        t.push_hop(Hop::labelled(3, ip(1, lsr_octets[1]), &[Lse::transit(labels[1], 253)]));
        t.push_hop(Hop::responsive(4, ip(1, 9)));
        t.push_hop(Hop::responsive(5, dst));
        t.reached = true;
        t
    }

    #[test]
    fn end_to_end_multi_fec() {
        // Two destinations in different ASes, same IP path, different
        // labels at the same LSRs => Multi-FEC.
        let traces = vec![
            mpls_trace(Ipv4Addr::new(192, 0, 2, 7), [100, 200], [2, 3]),
            mpls_trace(Ipv4Addr::new(198, 51, 100, 7), [101, 201], [2, 3]),
        ];
        let keys = Pipeline::snapshot_keys(&traces);
        let pipeline = Pipeline::default();
        let out = pipeline.run(&traces, &mapper, &[keys.clone(), keys]);
        assert_eq!(out.iotps.len(), 1);
        assert_eq!(out.iotps[0].1.class, Class::MultiFec);
        assert_eq!(out.class_counts().multi_fec, 1);
        assert_eq!(out.report.proportion_after(FilterStage::Persistence), 1.0);
    }

    #[test]
    fn end_to_end_mono_lsp() {
        let traces = vec![
            mpls_trace(Ipv4Addr::new(192, 0, 2, 7), [100, 200], [2, 3]),
            mpls_trace(Ipv4Addr::new(198, 51, 100, 7), [100, 200], [2, 3]),
        ];
        let keys = Pipeline::snapshot_keys(&traces);
        let out = Pipeline::default().run(&traces, &mapper, &[keys]);
        assert_eq!(out.class_counts().mono_lsp, 1);
    }

    #[test]
    fn single_destination_iotp_is_filtered_out() {
        let traces = vec![mpls_trace(Ipv4Addr::new(192, 0, 2, 7), [100, 200], [2, 3])];
        let keys = Pipeline::snapshot_keys(&traces);
        let out = Pipeline::default().run(&traces, &mapper, &[keys]);
        assert!(out.iotps.is_empty());
        assert_eq!(out.report.remaining[&FilterStage::TargetAs], 1);
        assert_eq!(out.report.remaining[&FilterStage::TransitDiversity], 0);
    }

    #[test]
    fn nonpersistent_lsps_drop_and_reinject() {
        let traces = vec![
            mpls_trace(Ipv4Addr::new(192, 0, 2, 7), [100, 200], [2, 3]),
            mpls_trace(Ipv4Addr::new(198, 51, 100, 7), [101, 201], [2, 3]),
        ];
        // Empty future snapshots: nothing persists; the whole AS1 set
        // vanishes; reinjection kicks in and tags AS1 dynamic.
        let out =
            Pipeline::default().run(&traces, &mapper, &[BTreeSet::new(), BTreeSet::new()]);
        assert_eq!(out.report.remaining[&FilterStage::Persistence], 0);
        assert!(out.dynamic_ases.contains(&Asn(1)));
        assert_eq!(out.iotps.len(), 1);
    }

    #[test]
    fn alias_rescue_is_plumbed_through() {
        // A PHP tunnel whose LSPs never share a labelled IP: base
        // pipeline says Unclassified, alias rescue reclassifies.
        let mk = |lsr_octet: u8, label: u32, dst: Ipv4Addr| {
            let mut t = Trace::new(Ipv4Addr::new(203, 0, 113, 5), dst);
            t.push_hop(Hop::responsive(1, ip(1, 1)));
            t.push_hop(Hop::labelled(2, ip(1, lsr_octet), &[Lse::transit(label, 254)]));
            t.push_hop(Hop::responsive(3, ip(1, 9)));
            t.push_hop(Hop::responsive(4, dst));
            t.reached = true;
            t
        };
        let traces = vec![
            mk(2, 100, Ipv4Addr::new(192, 0, 2, 7)),
            mk(3, 101, Ipv4Addr::new(198, 51, 100, 7)),
        ];
        let keys = Pipeline::snapshot_keys(&traces);
        let base = Pipeline::default().run(&traces, &mapper, std::slice::from_ref(&keys));
        assert_eq!(base.class_counts().unclassified, 1);
        let rescued =
            Pipeline::default().with_alias_rescue().run(&traces, &mapper, &[keys]);
        assert_eq!(rescued.class_counts().unclassified, 0);
        assert_eq!(rescued.class_counts().multi_fec, 1);
    }

    #[test]
    fn recorded_stages_reconcile_with_filter_report() {
        let traces = vec![
            mpls_trace(Ipv4Addr::new(192, 0, 2, 7), [100, 200], [2, 3]),
            mpls_trace(Ipv4Addr::new(198, 51, 100, 7), [101, 201], [2, 3]),
        ];
        let keys = Pipeline::snapshot_keys(&traces);
        let rec = lpr_obs::Recorder::new("test");
        let out =
            Pipeline::default().run_recorded(&traces, &mapper, &[keys.clone(), keys], Some(&rec));
        let telemetry = rec.finish();

        // Filter stages chain exactly: input of stage k equals output of
        // stage k-1, starting from the report's input tunnel count.
        let mut input = out.report.input as u64;
        for stage in FilterStage::ALL {
            let s = telemetry.stage(stage.name()).unwrap_or_else(|| panic!("{}", stage.name()));
            assert_eq!(s.input, input, "{} input", stage.name());
            assert_eq!(s.output, out.report.remaining[&stage] as u64, "{} output", stage.name());
            input = s.output;
        }
        let extraction = telemetry.stage("TunnelExtraction").unwrap();
        assert_eq!(extraction.input, traces.len() as u64);
        assert_eq!(extraction.output, out.report.input as u64);
        let classification = telemetry.stage("Classification").unwrap();
        assert_eq!(classification.output, out.iotps.len() as u64);
        assert_eq!(telemetry.counter("pipeline.traces"), traces.len() as u64);
        assert_eq!(telemetry.counter("pipeline.tunnels"), out.report.input as u64);
        assert_eq!(telemetry.counter("pipeline.iotps_classified"), out.iotps.len() as u64);
    }

    #[test]
    fn recorder_is_optional_and_unrecorded_runs_match() {
        let traces = vec![
            mpls_trace(Ipv4Addr::new(192, 0, 2, 7), [100, 200], [2, 3]),
            mpls_trace(Ipv4Addr::new(198, 51, 100, 7), [101, 201], [2, 3]),
        ];
        let keys = Pipeline::snapshot_keys(&traces);
        let rec = lpr_obs::Recorder::new("test");
        let plain = Pipeline::default().run(&traces, &mapper, std::slice::from_ref(&keys));
        let recorded =
            Pipeline::default().run_recorded(&traces, &mapper, &[keys], Some(&rec));
        assert_eq!(plain.report, recorded.report);
        assert_eq!(plain.class_counts(), recorded.class_counts());
    }

    #[test]
    fn degraded_traces_are_quarantined_not_fatal() {
        use crate::quarantine::QuarantineReason;
        let clean = vec![
            mpls_trace(Ipv4Addr::new(192, 0, 2, 7), [100, 200], [2, 3]),
            mpls_trace(Ipv4Addr::new(198, 51, 100, 7), [101, 201], [2, 3]),
        ];
        let mut broken = clean.clone();
        let mut dup = mpls_trace(Ipv4Addr::new(192, 0, 2, 8), [100, 200], [2, 3]);
        dup.hops.push(dup.hops.last().unwrap().clone()); // duplicated reply
        broken.push(dup);
        let mut rev = mpls_trace(Ipv4Addr::new(198, 51, 100, 8), [100, 200], [2, 3]);
        rev.hops.swap(0, 3); // reordered replies
        broken.push(rev);

        let keys = Pipeline::snapshot_keys(&broken);
        assert_eq!(keys, Pipeline::snapshot_keys(&clean), "quarantined traces yield no keys");

        let rec = lpr_obs::Recorder::new("degraded");
        let out = Pipeline::default().run_recorded(
            &broken,
            &mapper,
            std::slice::from_ref(&keys),
            Some(&rec),
        );
        assert_eq!(out.degraded.kept, 2);
        assert_eq!(out.degraded.quarantined[&QuarantineReason::DuplicateTtl], 1);
        assert_eq!(out.degraded.quarantined[&QuarantineReason::NonMonotonicTtl], 1);
        assert_eq!(out.degraded.ingested(), broken.len() as u64);

        // The surviving pipeline matches a run over only the clean traces.
        let clean_out = Pipeline::default().run(&clean, &mapper, &[keys]);
        assert_eq!(out.iotps, clean_out.iotps);
        assert_eq!(out.report, clean_out.report);

        // Telemetry reconciles: kept + quarantined == traces ingested.
        let telemetry = rec.finish();
        assert_eq!(telemetry.counter("pipeline.traces"), broken.len() as u64);
        assert_eq!(telemetry.counter("pipeline.traces_kept"), 2);
        assert_eq!(telemetry.counter("pipeline.traces_quarantined"), 2);
        assert_eq!(
            telemetry.counter(QuarantineReason::DuplicateTtl.counter_name())
                + telemetry.counter(QuarantineReason::NonMonotonicTtl.counter_name()),
            telemetry.counter("pipeline.traces_quarantined"),
        );
    }

    #[test]
    fn class_counts_helpers() {
        let mut c = ClassCounts::default();
        c.add(Class::MonoLsp);
        c.add(Class::MultiFec);
        c.add(Class::MonoFec(crate::classify::MonoFecKind::ParallelLinks));
        c.add(Class::MonoFec(crate::classify::MonoFecKind::RoutersDisjoint));
        assert_eq!(c.total(), 4);
        assert_eq!(c.mono_fec(), 2);
        let f = c.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let mut d = ClassCounts::default();
        d.merge(&c);
        assert_eq!(d, c);
        assert_eq!(ClassCounts::default().fractions(), [0.0; 4]);
    }
}
