//! Label-based alias resolution and router-level IOTPs (§5).
//!
//! The paper keeps its analysis at the *address* level to avoid the
//! biases of active alias-resolution tools, but sketches how the label
//! patterns themselves reveal aliases:
//!
//! 1. **Parallel-link positions** — when two branches of an IOTP carry
//!    *identical label sequences* over *different addresses*, LDP's
//!    per-router label scope says those addresses belong to the same
//!    routers (the Fig. 4d argument): every differing position yields
//!    an alias pair.
//! 2. **Predecessors of a common IP** — replying with the incoming
//!    interface over point-to-point links means that reaching the same
//!    address implies arriving over the same link from the same
//!    upstream router; the hops *preceding* a shared address in
//!    different branches are therefore aliases (the §5 argument behind
//!    the penultimate-hop heuristic).
//!
//! [`infer_aliases`] mines both patterns from classified IOTPs;
//! [`merge_router_level`] then re-keys IOTPs by alias-set
//! representative, producing the *router-level* IOTPs §5 calls for —
//! fewer, more consistent pairs.

use crate::lsp::{Branch, Iotp, IotpKey};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// A union-find over interface addresses.
#[derive(Clone, Debug, Default)]
pub struct AliasSets {
    parent: BTreeMap<Ipv4Addr, Ipv4Addr>,
}

impl AliasSets {
    /// An empty relation (every address its own router).
    pub fn new() -> Self {
        Self::default()
    }

    /// The canonical representative of an address's alias set.
    pub fn find(&self, addr: Ipv4Addr) -> Ipv4Addr {
        let mut cur = addr;
        while let Some(&p) = self.parent.get(&cur) {
            if p == cur {
                break;
            }
            cur = p;
        }
        cur
    }

    /// Declares two addresses aliases of the same router.
    pub fn union(&mut self, a: Ipv4Addr, b: Ipv4Addr) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            // Deterministic orientation: the smaller address leads.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent.insert(hi, lo);
            self.parent.entry(lo).or_insert(lo);
        }
    }

    /// Whether two addresses are known aliases.
    pub fn same_router(&self, a: Ipv4Addr, b: Ipv4Addr) -> bool {
        self.find(a) == self.find(b)
    }

    /// Every non-trivial alias set (size ≥ 2), each sorted.
    pub fn sets(&self) -> Vec<Vec<Ipv4Addr>> {
        let mut grouped: BTreeMap<Ipv4Addr, Vec<Ipv4Addr>> = BTreeMap::new();
        for &addr in self.parent.keys() {
            grouped.entry(self.find(addr)).or_default().push(addr);
        }
        grouped.into_values().filter(|v| v.len() >= 2).collect()
    }
}

fn label_signature(b: &Branch) -> Vec<Vec<crate::label::Label>> {
    b.hops.iter().map(|h| h.labels()).collect()
}

/// Mines alias pairs from the label patterns of a set of IOTPs.
pub fn infer_aliases<'a>(iotps: impl IntoIterator<Item = &'a Iotp>) -> AliasSets {
    let mut sets = AliasSets::new();
    for iotp in iotps {
        let branches = &iotp.branches;
        for i in 0..branches.len() {
            for j in i + 1..branches.len() {
                let (a, b) = (&branches[i], &branches[j]);
                // Pattern 1: identical label sequences => positionwise
                // aliases.
                if a.hops.len() == b.hops.len() && label_signature(a) == label_signature(b) {
                    for (ha, hb) in a.hops.iter().zip(&b.hops) {
                        if ha.addr != hb.addr {
                            sets.union(ha.addr, hb.addr);
                        }
                    }
                }
                // Pattern 2: predecessors of a shared address are
                // aliases (point-to-point incoming-interface replies).
                for (pa, wa) in a.hops.windows(2).enumerate() {
                    let _ = pa;
                    for wb in b.hops.windows(2) {
                        if wa[1].addr == wb[1].addr && wa[0].addr != wb[0].addr {
                            sets.union(wa[0].addr, wb[0].addr);
                        }
                    }
                }
            }
        }
    }
    sets
}

/// Re-keys IOTPs at the router level: ingress/egress addresses are
/// replaced by their alias-set representative and IOTPs that collapse
/// onto the same key are merged.
///
/// Returns the merged IOTPs together with how many address-level IOTPs
/// each one absorbed.
pub fn merge_router_level(iotps: &[Iotp], aliases: &AliasSets) -> Vec<(Iotp, usize)> {
    let mut merged: BTreeMap<IotpKey, (Iotp, usize)> = BTreeMap::new();
    for iotp in iotps {
        let key = IotpKey {
            asn: iotp.key.asn,
            ingress: aliases.find(iotp.key.ingress),
            egress: aliases.find(iotp.key.egress),
        };
        let entry = merged
            .entry(key)
            .or_insert_with(|| (Iotp::new(key), 0));
        entry.1 += 1;
        // Re-absorb every branch as an LSP-like observation.
        for b in &iotp.branches {
            let lsp = crate::lsp::Lsp {
                asn: iotp.key.asn,
                ingress: key.ingress,
                egress: key.egress,
                hops: b.hops.clone(),
                dst: Ipv4Addr::UNSPECIFIED,
                dst_asn: b.dst_asns.iter().next().copied(),
            };
            entry.0.absorb(&lsp);
            // Preserve the full destination sets.
            if let Some(last) = entry.0.branches.last_mut() {
                let sig_match = last.hops.len() == b.hops.len()
                    && last.hops.iter().zip(&b.hops).all(|(x, y)| x == y);
                if sig_match {
                    last.dst_asns.extend(b.dst_asns.iter().copied());
                }
            }
        }
    }
    merged.into_values().collect()
}

/// Convenience: the distinct destination-AS count of a merged IOTP.
pub fn dst_diversity(iotp: &Iotp) -> usize {
    let all: BTreeSet<_> = iotp.branches.iter().flat_map(|b| b.dst_asns.iter()).collect();
    all.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{LabelStack, Lse};
    use crate::lsp::{Asn, Lsp, LspHop};

    fn ip(o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, o)
    }

    fn lsp(ingress: u8, egress: u8, hops: &[(u8, u32)], dst_asn: u32) -> Lsp {
        Lsp {
            asn: Asn(65000),
            ingress: ip(ingress),
            egress: ip(egress),
            hops: hops
                .iter()
                .map(|&(o, l)| {
                    LspHop::new(ip(o), LabelStack::from_entries(&[Lse::transit(l, 255)]))
                })
                .collect(),
            dst: Ipv4Addr::new(192, 0, 2, 1),
            dst_asn: Some(Asn(dst_asn)),
        }
    }

    fn iotp_of(lsps: &[Lsp]) -> Iotp {
        let mut iotp = Iotp::new(lsps[0].iotp_key());
        for l in lsps {
            iotp.absorb(l);
        }
        iotp
    }

    #[test]
    fn parallel_links_reveal_aliases() {
        // Same labels, different first-hop addresses: ip(2) and ip(3)
        // must be aliases.
        let iotp = iotp_of(&[
            lsp(1, 9, &[(2, 100), (7, 400)], 100),
            lsp(1, 9, &[(3, 100), (7, 400)], 101),
        ]);
        let aliases = infer_aliases([&iotp]);
        assert!(aliases.same_router(ip(2), ip(3)));
        assert!(!aliases.same_router(ip(2), ip(7)));
        assert_eq!(aliases.sets(), vec![vec![ip(2), ip(3)]]);
    }

    #[test]
    fn predecessors_of_shared_address_are_aliases() {
        // Branches meet at ip(7) (same address => same incoming link):
        // their predecessors ip(2)/ip(4) are aliases even though the
        // labels differ (TE case).
        let iotp = iotp_of(&[
            lsp(1, 9, &[(2, 100), (7, 400)], 100),
            lsp(1, 9, &[(4, 101), (7, 401)], 101),
        ]);
        let aliases = infer_aliases([&iotp]);
        assert!(aliases.same_router(ip(2), ip(4)));
    }

    #[test]
    fn no_false_aliases_on_disjoint_branches() {
        let iotp = iotp_of(&[
            lsp(1, 9, &[(2, 100), (5, 300)], 100),
            lsp(1, 9, &[(3, 101), (6, 301)], 101),
        ]);
        let aliases = infer_aliases([&iotp]);
        assert!(aliases.sets().is_empty());
    }

    #[test]
    fn router_level_merge_collapses_aliased_ingresses() {
        // Two address-level IOTPs whose ingress addresses are aliases
        // (learned from a third, parallel-links IOTP).
        let teach = iotp_of(&[
            lsp(1, 9, &[(20, 100), (7, 400)], 100),
            lsp(1, 9, &[(21, 100), (7, 400)], 101),
        ]);
        let a = iotp_of(&[lsp(20, 8, &[(5, 200)], 100), lsp(20, 8, &[(5, 200)], 101)]);
        let b = iotp_of(&[lsp(21, 8, &[(5, 201)], 102)]);
        let aliases = infer_aliases([&teach]);
        assert!(aliases.same_router(ip(20), ip(21)));

        let merged = merge_router_level(&[a, b], &aliases);
        assert_eq!(merged.len(), 1, "aliased ingresses must merge");
        let (iotp, absorbed) = &merged[0];
        assert_eq!(*absorbed, 2);
        assert_eq!(iotp.key.ingress, ip(20)); // smaller representative
        assert_eq!(iotp.width(), 2); // L200 and L201 branches
        assert_eq!(dst_diversity(iotp), 3);
    }

    #[test]
    fn union_find_is_transitive_and_deterministic() {
        let mut s = AliasSets::new();
        s.union(ip(5), ip(3));
        s.union(ip(3), ip(8));
        assert!(s.same_router(ip(5), ip(8)));
        assert_eq!(s.find(ip(8)), ip(3));
        assert_eq!(s.sets(), vec![vec![ip(3), ip(5), ip(8)]]);
        // Unknown addresses are their own routers.
        assert_eq!(s.find(ip(77)), ip(77));
    }
}
