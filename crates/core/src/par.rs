//! Parallel front end of the LPR pipeline.
//!
//! The pipeline's hot path is embarrassingly parallel per trace (tunnel
//! extraction + the fused per-LSP filters) and per IOTP
//! (classification). This module shards that work over
//! [`lpr_par::map_shards`] while keeping the output **byte-identical**
//! to the sequential [`Pipeline::run`] for any thread count:
//!
//! - Traces are cut into contiguous shards; each worker runs its own
//!   [`CycleAccumulator`]-style ingest over its shard and hands back an
//!   owned [`IngestState`]. Merging shard states *in shard order*
//!   reproduces the sequential LSP order exactly, and every count is a
//!   plain sum.
//! - The aggregate stages (TransitDiversity → Persistence →
//!   classification) then run through the same
//!   [`Pipeline::finish_stages`] the sequential path uses, which in
//!   turn shards the per-LSP persistence probe and the per-IOTP
//!   classification.
//!
//! With `threads <= 1` every shard runs inline on the caller's thread —
//! the parallel entry points *are* the sequential pipeline then, not an
//! emulation of it.

use crate::filter::{lsp_keys_of_tunnels, AsMapper};
use crate::lsp::LspKey;
use crate::pipeline::{IngestState, Pipeline, PipelineOutput};
use crate::quarantine::QuarantineReason;
use crate::stream::CycleAccumulator;
use crate::trace::Trace;
use crate::tunnel::RawTunnel;
use lpr_par::ShardOptions;
use std::collections::BTreeSet;

impl Pipeline {
    /// Parallel [`Pipeline::run`]: identical output, sharded across
    /// `threads` workers (`0` means the machine's available
    /// parallelism).
    pub fn run_par(
        &self,
        traces: &[Trace],
        mapper: &(dyn AsMapper + Sync),
        future_keys: &[BTreeSet<LspKey>],
        threads: usize,
    ) -> PipelineOutput {
        self.run_par_recorded(traces, mapper, future_keys, threads, None)
    }

    /// [`Pipeline::run_par`] with instrumentation.
    ///
    /// Aggregate stage rows match the sequential telemetry (same names,
    /// same input/output counts; per-LSP stage times are summed worker
    /// CPU time in a parallel run). When more than one worker actually
    /// runs, additional `worker{N}/<stage>` rows record each worker's
    /// busy time and item counts, and the run's `threads` field is set.
    pub fn run_par_recorded(
        &self,
        traces: &[Trace],
        mapper: &(dyn AsMapper + Sync),
        future_keys: &[BTreeSet<LspKey>],
        threads: usize,
        recorder: Option<&lpr_obs::Recorder>,
    ) -> PipelineOutput {
        let opts = ShardOptions::new(threads);
        let parallel = opts.effective_threads() > 1;
        if let Some(rec) = recorder {
            rec.set_threads(opts.effective_threads() as u64);
        }
        let disabled = lpr_obs::Tracer::disabled();
        let tracer = recorder.map_or(&disabled, |r| r.tracer());

        // Shards are caught: a panicking worker closure poisons only its
        // own shard, whose traces are then quarantined wholesale instead
        // of tearing down the run (the panic itself is deterministic per
        // shard, so so is the quarantine).
        let ingest_span = tracer.span("stage:Ingest");
        let run = lpr_par::map_shards_traced(
            traces,
            opts,
            lpr_par::ShardTrace::new(tracer, ingest_span.context()),
            |_, shard| {
                let mut acc = CycleAccumulator::new(mapper);
                for trace in shard {
                    acc.push_trace(trace);
                }
                acc.into_state()
            },
        );

        // Shard-order merge: LSPs concatenate in input order, counts sum.
        let mut shard_outputs = Vec::with_capacity(run.outputs.len());
        let mut ingest = IngestState::default();
        let mut poisoned = 0u64;
        for (shard, result) in run.outputs.into_iter().enumerate() {
            match result {
                Ok(state) => {
                    shard_outputs.push((shard, state.lsps.len() as u64));
                    ingest.merge(state);
                }
                Err(_poisoned_shard) => {
                    let n = run.shard_lens.get(shard).copied().unwrap_or(0) as u64;
                    // Merged (not field-poked) so the quarantined shard
                    // lands in the per-cycle provenance like any other.
                    let mut degraded = crate::quarantine::DegradedReport::default();
                    degraded.note_many(QuarantineReason::PoisonedShard, n);
                    ingest.merge(IngestState {
                        traces_in: n,
                        degraded,
                        ..IngestState::default()
                    });
                    poisoned += 1;
                    shard_outputs.push((shard, 0));
                }
            }
        }
        drop(ingest_span);
        if let Some(rec) = recorder {
            if poisoned > 0 {
                rec.counter(lpr_obs::names::PAR_POISONED_SHARDS).add(poisoned);
            }
        }

        if let Some(rec) = recorder {
            if parallel {
                let mut per_worker: std::collections::BTreeMap<usize, u64> =
                    std::collections::BTreeMap::new();
                for (shard, surviving) in &shard_outputs {
                    let w = run.shard_workers.get(*shard).copied().unwrap_or(0);
                    *per_worker.entry(w).or_default() += surviving;
                }
                for stat in &run.workers {
                    let surviving = per_worker.get(&stat.worker).copied().unwrap_or(0);
                    rec.record_worker_stage(
                        stat.worker,
                        "Ingest",
                        stat.busy_us,
                        stat.items,
                        surviving,
                    );
                }
            }
        }

        self.finish_stages(ingest, future_keys, recorder, opts)
    }

    /// Parallel [`Pipeline::snapshot_keys`]: the per-snapshot LSP key
    /// sets the Persistence filter matches against, computed by sharding
    /// traces across workers and unioning the per-shard key sets (a set
    /// union is order-insensitive, so the result is identical to the
    /// sequential one).
    pub fn snapshot_keys_par(traces: &[Trace], threads: usize) -> BTreeSet<LspKey> {
        let run = lpr_par::map_shards(traces, ShardOptions::new(threads), |_, shard| {
            let mut tunnels: Vec<RawTunnel> = Vec::new();
            for trace in shard {
                if crate::quarantine::validate_trace(trace).is_ok() {
                    crate::tunnel::extract_tunnels_into(trace, &mut tunnels);
                }
            }
            lsp_keys_of_tunnels(&tunnels)
        });
        let mut keys = BTreeSet::new();
        for shard in run.outputs {
            keys.extend(shard);
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Lse;
    use crate::lsp::Asn;
    use crate::trace::Hop;
    use std::net::Ipv4Addr;

    fn ip(a: u8, o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, a, 0, o)
    }

    fn mapper(addr: Ipv4Addr) -> Option<Asn> {
        let o = addr.octets();
        match o[0] {
            10 => Some(Asn(o[1] as u32)),
            192 => Some(Asn(100)),
            198 => Some(Asn(101)),
            _ => None,
        }
    }

    /// A trace crossing AS`asn`'s two-LSR tunnel towards `dst`.
    fn mpls_trace(asn: u8, dst: Ipv4Addr, labels: [u32; 2], lsrs: [u8; 2]) -> Trace {
        let mut t = Trace::new(Ipv4Addr::new(203, 0, 113, 5), dst);
        t.push_hop(Hop::responsive(1, ip(asn, 1)));
        t.push_hop(Hop::labelled(2, ip(asn, lsrs[0]), &[Lse::transit(labels[0], 254)]));
        t.push_hop(Hop::labelled(3, ip(asn, lsrs[1]), &[Lse::transit(labels[1], 253)]));
        t.push_hop(Hop::responsive(4, ip(asn, 9)));
        t.push_hop(Hop::responsive(5, dst));
        t.reached = true;
        t
    }

    /// A mixed workload: several ASes, diverse and non-diverse IOTPs,
    /// some non-persistent LSPs.
    fn workload() -> Vec<Trace> {
        let mut traces = Vec::new();
        for asn in 1..=6u8 {
            for i in 0..10u32 {
                let dst = if i % 2 == 0 {
                    Ipv4Addr::new(192, 0, 2, 10 + i as u8)
                } else {
                    Ipv4Addr::new(198, 51, 100, 10 + i as u8)
                };
                traces.push(mpls_trace(asn, dst, [100 + i % 3, 200 + i % 3], [2, 3]));
            }
        }
        traces
    }

    #[test]
    fn parallel_run_is_byte_identical_to_sequential() {
        let traces = workload();
        let keys = Pipeline::snapshot_keys(&traces);
        let pipeline = Pipeline::default();
        let seq = pipeline.run(&traces, &mapper, std::slice::from_ref(&keys));
        for threads in [1usize, 2, 3, 4, 8] {
            let par = pipeline.run_par(&traces, &mapper, std::slice::from_ref(&keys), threads);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_snapshot_keys_match_sequential() {
        let traces = workload();
        let seq = Pipeline::snapshot_keys(&traces);
        for threads in [1usize, 2, 4, 7] {
            assert_eq!(Pipeline::snapshot_keys_par(&traces, threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_options_are_respected() {
        let traces = workload();
        let keys = Pipeline::snapshot_keys(&traces);
        let mut pipeline = Pipeline::default().with_alias_rescue();
        pipeline.skip_transit_diversity = true;
        let seq = pipeline.run(&traces, &mapper, std::slice::from_ref(&keys));
        let par = pipeline.run_par(&traces, &mapper, std::slice::from_ref(&keys), 4);
        assert_eq!(par, seq);
    }

    #[test]
    fn parallel_telemetry_reconciles_with_sequential_counts() {
        let traces = workload();
        let keys = Pipeline::snapshot_keys(&traces);
        let pipeline = Pipeline::default();

        let rec = lpr_obs::Recorder::new("par");
        let out =
            pipeline.run_par_recorded(&traces, &mapper, std::slice::from_ref(&keys), 4, Some(&rec));
        let telemetry = rec.finish();
        assert_eq!(telemetry.threads, 4);

        // Aggregate filter stages chain exactly as in the sequential run.
        let mut input = out.report.input as u64;
        for stage in crate::filter::FilterStage::ALL {
            let s = telemetry.stage(stage.name()).unwrap_or_else(|| panic!("{}", stage.name()));
            assert_eq!(s.input, input, "{} input", stage.name());
            assert_eq!(s.output, out.report.remaining[&stage] as u64, "{} output", stage.name());
            input = s.output;
        }

        // Worker rows sum-reconcile with the aggregate stages.
        let ingest: Vec<_> = telemetry.worker_stages("Ingest");
        assert!(!ingest.is_empty(), "worker ingest rows expected");
        assert_eq!(
            ingest.iter().map(|s| s.input).sum::<u64>(),
            traces.len() as u64,
            "worker ingest inputs cover every trace"
        );
        assert_eq!(
            ingest.iter().map(|s| s.output).sum::<u64>(),
            out.report.remaining[&crate::filter::FilterStage::TargetAs] as u64,
            "worker ingest outputs sum to the TargetAS survivors"
        );
        let classify: Vec<_> = telemetry.worker_stages("Classification");
        assert!(!classify.is_empty(), "worker classification rows expected");
        assert_eq!(
            classify.iter().map(|s| s.output).sum::<u64>(),
            out.iotps.len() as u64,
            "worker classification outputs sum to the classified IOTPs"
        );
        let persist: Vec<_> = telemetry.worker_stages("Persistence");
        assert_eq!(
            persist.iter().map(|s| s.input).sum::<u64>(),
            out.report.remaining[&crate::filter::FilterStage::TransitDiversity] as u64,
        );
        assert_eq!(
            persist.iter().map(|s| s.output).sum::<u64>(),
            out.report.remaining[&crate::filter::FilterStage::Persistence] as u64,
        );
    }

    #[test]
    fn quarantine_is_identical_across_thread_counts() {
        // Sprinkle structurally-broken traces through the workload; the
        // quarantine (and hence the whole output, degraded report
        // included) must not depend on sharding.
        let mut traces = workload();
        for i in [3usize, 17, 40] {
            let mut t = traces[i].clone();
            t.hops.push(t.hops[2].clone()); // duplicated reply
            traces.insert(i, t);
        }
        let keys = Pipeline::snapshot_keys(&traces);
        let pipeline = Pipeline::default();
        let seq = pipeline.run(&traces, &mapper, std::slice::from_ref(&keys));
        assert_eq!(seq.degraded.quarantined_total(), 3);
        assert_eq!(seq.degraded.ingested(), traces.len() as u64);
        for threads in [1usize, 2, 3, 4, 8] {
            let par = pipeline.run_par(&traces, &mapper, std::slice::from_ref(&keys), threads);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn panicking_worker_quarantines_its_shard() {
        // A mapper that panics on one sentinel address: the shard
        // holding that trace is quarantined as PoisonedShard, every
        // other shard classifies normally and the run completes.
        let bomb = Ipv4Addr::new(10, 66, 0, 1);
        let volatile_mapper = move |addr: Ipv4Addr| -> Option<Asn> {
            assert_ne!(addr, bomb, "mapper hit the poisoned address");
            mapper(addr)
        };
        // Several shards' worth of traces (shards hold >= 64 items), so
        // the bomb's shard is a strict subset of the input.
        let mut traces = Vec::new();
        for _ in 0..5 {
            traces.extend(workload());
        }
        let n_clean = traces.len();
        let mut t = mpls_trace(66, Ipv4Addr::new(192, 0, 2, 99), [1, 2], [2, 3]);
        t.hops[0] = Hop::responsive(1, bomb);
        traces.insert(traces.len() / 2, t);

        let keys = Pipeline::snapshot_keys_par(&traces, 1);
        let pipeline = Pipeline::default();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = pipeline.run_par(&traces, &volatile_mapper, std::slice::from_ref(&keys), 4);
        std::panic::set_hook(prev);

        use crate::quarantine::QuarantineReason;
        let poisoned = out.degraded.quarantined[&QuarantineReason::PoisonedShard];
        assert!(poisoned >= 1, "the bomb trace's shard is quarantined");
        assert!(
            poisoned < traces.len() as u64,
            "only the bomb's shard is quarantined, not the whole run"
        );
        assert_eq!(out.degraded.ingested(), traces.len() as u64);
        assert_eq!(out.degraded.kept, n_clean as u64 + 1 - poisoned);
        assert!(!out.iotps.is_empty(), "surviving shards still classify");
    }

    #[test]
    fn single_threaded_run_records_no_worker_rows() {
        let traces = workload();
        let keys = Pipeline::snapshot_keys(&traces);
        let rec = lpr_obs::Recorder::new("seq");
        Pipeline::default().run_par_recorded(
            &traces,
            &mapper,
            std::slice::from_ref(&keys),
            1,
            Some(&rec),
        );
        let telemetry = rec.finish();
        assert_eq!(telemetry.threads, 1);
        assert!(telemetry.worker_stages("Ingest").is_empty());
        assert!(telemetry.worker_stages("Classification").is_empty());
    }
}
