//! The filtering-and-sanitising stage of LPR (paper §3.1, Table 1).
//!
//! Four filters are applied sequentially to the explicit tunnels
//! extracted from a cycle (plus the implicit *incomplete-LSP* removal
//! performed during extraction):
//!
//! 1. **IncompleteLsp** — LSPs containing an anonymous LSR or whose LERs
//!    could not be delimited are removed.
//! 2. **IntraAs** — every address involved in the LSP must belong to one
//!    AS (inter-domain transit tunnels are negligible: 0.9% in the
//!    paper).
//! 3. **TargetAs** — the traceroute destination must sit in a *different*
//!    AS than the tunnel, otherwise the tunnel does not carry transit
//!    traffic.
//! 4. **TransitDiversity** — only IOTPs used to reach at least two
//!    distinct destination ASes are kept (multi-FEC practice is defined
//!    on destination prefixes).
//! 5. **Persistence** — an LSP seen in cycle *X* is kept only if it is
//!    seen again in one of the *j* following snapshots of the same month
//!    (default *j = 2*). If an AS loses its whole LSP set to this filter
//!    the set is reinjected and the AS tagged *dynamic* (§4.5).

use crate::lsp::{Asn, Iotp, IotpKey, Lsp, LspHop, LspKey};
use crate::tunnel::RawTunnel;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Maps an IP address to the AS that originates it (IP2AS).
///
/// Implemented by `ip2as::Ip2AsTrie` over Routeviews-style RIB
/// snapshots; any longest-prefix-match source will do.
pub trait AsMapper {
    /// The origin AS of `addr`, or `None` when unmapped.
    fn asn_of(&self, addr: Ipv4Addr) -> Option<Asn>;
}

impl<F: Fn(Ipv4Addr) -> Option<Asn>> AsMapper for F {
    fn asn_of(&self, addr: Ipv4Addr) -> Option<Asn> {
        self(addr)
    }
}

/// The filter stages, in application order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum FilterStage {
    /// Anonymous LSR / undelimited LER removal (done at extraction).
    IncompleteLsp,
    /// All LSP addresses in one AS.
    IntraAs,
    /// Destination outside the tunnel's AS.
    TargetAs,
    /// IOTP reaches ≥ 2 destination ASes.
    TransitDiversity,
    /// LSP re-observed within the next `j` snapshots.
    Persistence,
}

impl FilterStage {
    /// All stages in order.
    pub const ALL: [FilterStage; 5] = [
        FilterStage::IncompleteLsp,
        FilterStage::IntraAs,
        FilterStage::TargetAs,
        FilterStage::TransitDiversity,
        FilterStage::Persistence,
    ];

    /// Human-readable name matching Table 1 of the paper.
    pub fn name(&self) -> &'static str {
        match self {
            FilterStage::IncompleteLsp => "Incomplete LSPs",
            FilterStage::IntraAs => "IntraAS",
            FilterStage::TargetAs => "TargetAS",
            FilterStage::TransitDiversity => "TransitDiversity",
            FilterStage::Persistence => "Persistence",
        }
    }
}

/// Configuration of the filter pipeline.
#[derive(Clone, Debug)]
pub struct FilterConfig {
    /// Persistence window `j`: an LSP of cycle X survives if re-observed
    /// in X+1, …, X+j. `0` disables the Persistence filter. The paper
    /// settles on `j = 2` (§4.2).
    pub persistence_window: usize,
    /// Fraction of an AS's LSPs that must disappear for the dynamic
    /// reinjection of §4.5 to trigger. The paper reinjects only when the
    /// *whole* set is deleted (footnote 4), i.e. `1.0`.
    pub dynamic_reinject_threshold: f64,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig { persistence_window: 2, dynamic_reinject_threshold: 1.0 }
    }
}

/// Survival accounting across the pipeline, in LSPs (Table 1 reports the
/// proportion of tunnels remaining after each filter).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FilterReport {
    /// LSPs entering the pipeline (raw extracted tunnels).
    pub input: usize,
    /// LSPs remaining after each stage, keyed by stage.
    pub remaining: BTreeMap<FilterStage, usize>,
}

impl FilterReport {
    /// Proportion of the input remaining after `stage` (1.0 when the
    /// input was empty, mirroring "nothing was removed").
    pub fn proportion_after(&self, stage: FilterStage) -> f64 {
        if self.input == 0 {
            return 1.0;
        }
        self.remaining.get(&stage).map_or(1.0, |&n| n as f64 / self.input as f64)
    }
}

/// Outcome of the LSP-level (per-trace) filters.
#[derive(Debug)]
pub struct AttributionOutcome {
    /// LSPs that survived IncompleteLsp + IntraAs + TargetAs.
    pub lsps: Vec<Lsp>,
    /// Count after IncompleteLsp.
    pub after_incomplete: usize,
    /// Count after IntraAs.
    pub after_intra_as: usize,
    /// Count after TargetAs (== `lsps.len()`).
    pub after_target_as: usize,
}

/// Applies the three per-LSP filters: IncompleteLsp, IntraAs, TargetAs.
///
/// Attribution assigns each complete tunnel to an AS: the AS every LSR
/// address and both LER addresses map to. Tunnels with unmapped or
/// mixed-AS addresses fail IntraAs; tunnels whose destination maps into
/// the tunnel's own AS (or is unmapped) fail TargetAs.
pub fn attribute_and_filter(
    tunnels: &[RawTunnel],
    mapper: &dyn AsMapper,
) -> AttributionOutcome {
    let mut after_incomplete = 0usize;
    let mut after_intra_as = 0usize;
    let mut lsps = Vec::new();

    for t in tunnels {
        if !t.is_complete() || t.lsrs.is_empty() {
            continue;
        }
        after_incomplete += 1;

        let ingress = t.ingress.expect("complete tunnel");
        let egress = t.egress.expect("complete tunnel");

        // IntraAs: all LSR addresses plus both LERs must map to one AS.
        let mut asn: Option<Asn> = None;
        let mut intra = true;
        for addr in t
            .lsrs
            .iter()
            .map(|(a, _)| *a)
            .chain([ingress, egress])
        {
            match mapper.asn_of(addr) {
                Some(a) => match asn {
                    None => asn = Some(a),
                    Some(prev) if prev == a => {}
                    Some(_) => {
                        intra = false;
                        break;
                    }
                },
                None => {
                    intra = false;
                    break;
                }
            }
        }
        let asn = match (intra, asn) {
            (true, Some(a)) => a,
            _ => continue,
        };
        after_intra_as += 1;

        // TargetAs: the destination must be in a different AS.
        let dst_asn = mapper.asn_of(t.dst);
        if dst_asn == Some(asn) || dst_asn.is_none() {
            continue;
        }

        lsps.push(Lsp {
            asn,
            ingress,
            egress,
            hops: t
                .lsrs
                .iter()
                .map(|(a, s)| LspHop::new(*a, s.clone()))
                .collect(),
            dst: t.dst,
            dst_asn,
        });
    }

    let after_target_as = lsps.len();
    AttributionOutcome { lsps, after_incomplete, after_intra_as, after_target_as }
}

/// Groups LSPs into IOTPs and applies the TransitDiversity filter:
/// only IOTPs reaching at least two destination ASes survive.
///
/// Returns the surviving IOTP keys as a **sorted** `Vec` — membership
/// checks downstream are a [`slice::binary_search`] on this slice (see
/// [`iotp_kept`]), which beats a `BTreeSet` probe on both locality and
/// allocation.
pub fn transit_diversity_keys(lsps: &[Lsp]) -> Vec<IotpKey> {
    let mut dsts: BTreeMap<IotpKey, BTreeSet<Asn>> = BTreeMap::new();
    for l in lsps {
        if let Some(d) = l.dst_asn {
            dsts.entry(l.iotp_key()).or_default().insert(d);
        }
    }
    // BTreeMap iterates in key order, so the Vec is born sorted.
    dsts.into_iter().filter(|(_, d)| d.len() >= 2).map(|(k, _)| k).collect()
}

/// Membership probe against the sorted keep-slice produced by
/// [`transit_diversity_keys`].
#[inline]
pub fn iotp_kept(keep: &[IotpKey], key: IotpKey) -> bool {
    keep.binary_search(&key).is_ok()
}

/// Result of the Persistence filter.
#[derive(Debug)]
pub struct PersistenceOutcome {
    /// LSPs kept (re-observed, or reinjected for dynamic ASes).
    pub lsps: Vec<Lsp>,
    /// ASes whose LSP set vanished entirely and was reinjected (§4.5).
    pub dynamic_ases: BTreeSet<Asn>,
    /// Number of LSP observations kept *before* dynamic reinjection
    /// (this is what Table 1 counts).
    pub strictly_persistent: usize,
}

/// Applies the Persistence filter: an LSP observation of the current
/// cycle survives when its [`LspKey`] appears in at least one of the
/// `future_keys` sets (the following `j` snapshots of the same month).
///
/// When every LSP of an AS would disappear (fraction ≥
/// `config.dynamic_reinject_threshold`), the AS's whole set is
/// reinjected and the AS is tagged dynamic — frequent label
/// reallocation is a TE behaviour worth studying, not noise (§4.5).
pub fn persistence(
    lsps: Vec<Lsp>,
    future_keys: &[BTreeSet<LspKey>],
    config: &FilterConfig,
) -> PersistenceOutcome {
    let flags = persistent_flags(&lsps, future_keys, config);
    let (kept, dropped) = partition_by_flags(lsps, &flags);
    reinject_dynamic(kept, dropped, config)
}

/// The per-LSP half of the Persistence filter: `flags[i]` is whether
/// `lsps[i]` is re-observed inside the window. This is the expensive
/// part — [`Lsp::key`] allocates the full signature — and is a pure
/// per-item map, so the parallel pipeline shards it.
pub fn persistent_flags(
    lsps: &[Lsp],
    future_keys: &[BTreeSet<LspKey>],
    config: &FilterConfig,
) -> Vec<bool> {
    if config.persistence_window == 0 {
        return vec![true; lsps.len()];
    }
    let window = &future_keys[..config.persistence_window.min(future_keys.len())];
    lsps.iter()
        .map(|l| {
            let key = l.key();
            window.iter().any(|cycle| cycle.contains(&key))
        })
        .collect()
}

/// Splits `lsps` into (kept, dropped) by the persistence flags,
/// preserving order within each half. Moves, never clones.
pub fn partition_by_flags(lsps: Vec<Lsp>, flags: &[bool]) -> (Vec<Lsp>, Vec<Lsp>) {
    debug_assert_eq!(lsps.len(), flags.len());
    let mut kept = Vec::with_capacity(lsps.len());
    let mut dropped = Vec::new();
    for (l, &keep) in lsps.into_iter().zip(flags) {
        if keep {
            kept.push(l);
        } else {
            dropped.push(l);
        }
    }
    (kept, dropped)
}

/// The aggregate half of the Persistence filter: per-AS dynamic
/// detection and reinjection over an already-partitioned LSP set (§4.5).
pub fn reinject_dynamic(
    mut kept: Vec<Lsp>,
    dropped: Vec<Lsp>,
    config: &FilterConfig,
) -> PersistenceOutcome {
    let strictly_persistent = kept.len();

    let mut kept_per_as: BTreeMap<Asn, usize> = BTreeMap::new();
    let mut dropped_per_as: BTreeMap<Asn, usize> = BTreeMap::new();
    for l in &kept {
        *kept_per_as.entry(l.asn).or_default() += 1;
    }
    for l in &dropped {
        *dropped_per_as.entry(l.asn).or_default() += 1;
    }
    let mut dynamic_ases = BTreeSet::new();
    for (&asn, &ndropped) in &dropped_per_as {
        let nkept = kept_per_as.get(&asn).copied().unwrap_or(0);
        let total = nkept + ndropped;
        if total > 0 && ndropped as f64 / total as f64 >= config.dynamic_reinject_threshold {
            dynamic_ases.insert(asn);
        }
    }
    if !dynamic_ases.is_empty() {
        kept.extend(dropped.into_iter().filter(|l| dynamic_ases.contains(&l.asn)));
    }

    PersistenceOutcome { lsps: kept, dynamic_ases, strictly_persistent }
}

/// Builds the final IOTPs from the filtered LSPs, restricted to the
/// surviving IOTP keys (the sorted slice from
/// [`transit_diversity_keys`]).
///
/// The result is sorted by [`IotpKey`] and key-unique — parallel
/// classification relies on this to shard without regrouping.
pub fn build_iotps(lsps: &[Lsp], keep: &[IotpKey]) -> Vec<Iotp> {
    let mut map: BTreeMap<IotpKey, Iotp> = BTreeMap::new();
    for l in lsps {
        let k = l.iotp_key();
        if !iotp_kept(keep, k) {
            continue;
        }
        map.entry(k).or_insert_with(|| Iotp::new(k)).absorb(l);
    }
    map.into_values().collect()
}

/// Computes the LSP keys present in a set of traces: the per-snapshot
/// sets the Persistence filter matches against. Only complete tunnels
/// count (an incomplete re-observation cannot confirm an LSP).
pub fn lsp_keys_of_tunnels(tunnels: &[RawTunnel]) -> BTreeSet<LspKey> {
    tunnels
        .iter()
        .filter(|t| t.is_complete() && !t.lsrs.is_empty())
        .map(|t| LspKey {
            ingress: t.ingress.expect("complete"),
            egress: t.egress.expect("complete"),
            signature: t
                .lsrs
                .iter()
                .map(|(a, s)| (*a, s.label_values()))
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{LabelStack, Lse};
    use crate::tunnel::TunnelError;

    fn ip(a: u8, o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, a, 0, o)
    }

    /// Maps 10.a.0.x -> AS(a), 192.0.2.x -> AS(100), else None.
    fn mapper(addr: Ipv4Addr) -> Option<Asn> {
        let o = addr.octets();
        match (o[0], o[1]) {
            (10, a) => Some(Asn(a as u32)),
            (192, 0) => Some(Asn(100)),
            _ => None,
        }
    }

    fn tunnel(asn: u8, labels: &[u32], dst: Ipv4Addr) -> RawTunnel {
        RawTunnel {
            ingress: Some(ip(asn, 1)),
            egress: Some(ip(asn, 9)),
            lsrs: labels
                .iter()
                .enumerate()
                .map(|(i, &l)| {
                    (ip(asn, 2 + i as u8), LabelStack::from_entries(&[Lse::transit(l, 255)]))
                })
                .collect(),
            dst,
            src: Ipv4Addr::new(203, 0, 113, 1),
            incomplete: None,
        }
    }

    #[test]
    fn incomplete_tunnels_are_dropped() {
        let mut t = tunnel(1, &[100], Ipv4Addr::new(192, 0, 2, 1));
        t.incomplete = Some(TunnelError::AnonymousLsr);
        let out = attribute_and_filter(&[t], &mapper);
        assert_eq!(out.after_incomplete, 0);
        assert!(out.lsps.is_empty());
    }

    #[test]
    fn inter_as_tunnel_fails_intra_as() {
        let mut t = tunnel(1, &[100, 200], Ipv4Addr::new(192, 0, 2, 1));
        t.lsrs[1].0 = ip(2, 3); // second LSR in another AS
        let out = attribute_and_filter(&[t], &mapper);
        assert_eq!(out.after_incomplete, 1);
        assert_eq!(out.after_intra_as, 0);
    }

    #[test]
    fn unmapped_address_fails_intra_as() {
        let mut t = tunnel(1, &[100], Ipv4Addr::new(192, 0, 2, 1));
        t.lsrs[0].0 = Ipv4Addr::new(172, 16, 0, 1);
        let out = attribute_and_filter(&[t], &mapper);
        assert_eq!(out.after_intra_as, 0);
    }

    #[test]
    fn destination_inside_tunnel_as_fails_target_as() {
        let t = tunnel(1, &[100], ip(1, 200)); // dst in AS1 itself
        let out = attribute_and_filter(&[t], &mapper);
        assert_eq!(out.after_intra_as, 1);
        assert_eq!(out.after_target_as, 0);
    }

    #[test]
    fn good_tunnel_survives_lsp_filters() {
        let t = tunnel(1, &[100, 200], Ipv4Addr::new(192, 0, 2, 1));
        let out = attribute_and_filter(&[t], &mapper);
        assert_eq!(out.after_target_as, 1);
        let l = &out.lsps[0];
        assert_eq!(l.asn, Asn(1));
        assert_eq!(l.dst_asn, Some(Asn(100)));
        assert_eq!(l.lsr_count(), 2);
    }

    fn lsp_to(asn: u8, labels: &[u32], dst_asn: u32) -> Lsp {
        Lsp {
            asn: Asn(asn as u32),
            ingress: ip(asn, 1),
            egress: ip(asn, 9),
            hops: labels
                .iter()
                .enumerate()
                .map(|(i, &l)| {
                    LspHop::new(
                        ip(asn, 2 + i as u8),
                        LabelStack::from_entries(&[Lse::transit(l, 255)]),
                    )
                })
                .collect(),
            dst: Ipv4Addr::new(192, 0, 2, 1),
            dst_asn: Some(Asn(dst_asn)),
        }
    }

    #[test]
    fn transit_diversity_requires_two_dst_ases() {
        let single = vec![lsp_to(1, &[100], 100), lsp_to(1, &[100], 100)];
        let keep = transit_diversity_keys(&single);
        assert!(keep.is_empty());
        assert_eq!(single.iter().filter(|l| iotp_kept(&keep, l.iotp_key())).count(), 0);

        let diverse = vec![lsp_to(1, &[100], 100), lsp_to(1, &[100], 101)];
        let keep = transit_diversity_keys(&diverse);
        assert_eq!(keep.len(), 1);
        assert_eq!(diverse.iter().filter(|l| iotp_kept(&keep, l.iotp_key())).count(), 2);
    }

    #[test]
    fn transit_diversity_keys_are_sorted_for_binary_search() {
        let lsps: Vec<Lsp> = (1..=9u8)
            .rev() // arrival order must not matter
            .flat_map(|a| vec![lsp_to(a, &[100], 100), lsp_to(a, &[100], 101)])
            .collect();
        let keep = transit_diversity_keys(&lsps);
        assert_eq!(keep.len(), 9);
        assert!(keep.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
        for l in &lsps {
            assert!(iotp_kept(&keep, l.iotp_key()));
        }
        assert!(!iotp_kept(&keep, lsp_to(200, &[1], 100).iotp_key()));
    }

    #[test]
    fn persistence_keeps_reobserved_lsps() {
        let a = lsp_to(1, &[100], 100);
        let b = lsp_to(1, &[200], 101);
        let c = lsp_to(2, &[300], 100); // sole AS2 LSP, never re-seen -> reinjected
        let future: Vec<BTreeSet<LspKey>> =
            vec![[a.key()].into_iter().collect(), BTreeSet::new()];
        let out = persistence(
            vec![a.clone(), b, c.clone()],
            &future,
            &FilterConfig::default(),
        );
        assert_eq!(out.strictly_persistent, 1);
        // AS1 kept only `a` (majority survived => no reinjection);
        // AS2 lost everything => reinjected + tagged dynamic.
        assert!(out.dynamic_ases.contains(&Asn(2)));
        assert!(!out.dynamic_ases.contains(&Asn(1)));
        assert_eq!(out.lsps.len(), 2);
        assert!(out.lsps.iter().any(|l| l.key() == a.key()));
        assert!(out.lsps.iter().any(|l| l.key() == c.key()));
    }

    #[test]
    fn persistence_window_zero_is_identity() {
        let a = lsp_to(1, &[100], 100);
        let out = persistence(
            vec![a],
            &[],
            &FilterConfig { persistence_window: 0, ..Default::default() },
        );
        assert_eq!(out.lsps.len(), 1);
        assert!(out.dynamic_ases.is_empty());
    }

    #[test]
    fn persistence_respects_window_length() {
        let a = lsp_to(1, &[100], 100);
        let in_third: Vec<BTreeSet<LspKey>> = vec![
            BTreeSet::new(),
            BTreeSet::new(),
            [a.key()].into_iter().collect(),
        ];
        // j = 2 cannot see the third snapshot -> dropped (then reinjected
        // as the whole AS1 set vanished, tagging AS1 dynamic).
        let out = persistence(vec![a.clone()], &in_third, &FilterConfig::default());
        assert_eq!(out.strictly_persistent, 0);
        assert!(out.dynamic_ases.contains(&Asn(1)));
        // j = 3 sees it.
        let out = persistence(
            vec![a],
            &in_third,
            &FilterConfig { persistence_window: 3, ..Default::default() },
        );
        assert_eq!(out.strictly_persistent, 1);
    }

    #[test]
    fn build_iotps_groups_by_key() {
        let lsps = vec![lsp_to(1, &[100], 100), lsp_to(1, &[200], 101), lsp_to(2, &[1], 100)];
        let mut keep: Vec<IotpKey> = lsps.iter().map(|l| l.iotp_key()).collect();
        keep.sort();
        keep.dedup();
        let iotps = build_iotps(&lsps, &keep);
        assert_eq!(iotps.len(), 2);
        let as1 = iotps.iter().find(|i| i.key.asn == Asn(1)).unwrap();
        assert_eq!(as1.width(), 2);
    }

    #[test]
    fn filter_report_proportions() {
        let mut r = FilterReport { input: 200, remaining: BTreeMap::new() };
        r.remaining.insert(FilterStage::IncompleteLsp, 170);
        assert!((r.proportion_after(FilterStage::IncompleteLsp) - 0.85).abs() < 1e-9);
        // Unknown stage falls back to 1.0; empty input reports 1.0.
        assert_eq!(r.proportion_after(FilterStage::Persistence), 1.0);
        let empty = FilterReport::default();
        assert_eq!(empty.proportion_after(FilterStage::IntraAs), 1.0);
    }
}
