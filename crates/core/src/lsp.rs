//! LSPs (Label Switched Paths) and IOTPs (In-Out Transit Pairs).
//!
//! After tunnel extraction and AS attribution, the unit of analysis is
//! the [`Lsp`]: one observed label-switched path through a single AS,
//! with its ingress and egress LERs and, for every intermediate LSR, the
//! reply address and the quoted label stack.
//!
//! LSPs sharing the same `<Ingress LER; Egress LER>` pair within the same
//! AS form an [`Iotp`] (paper §3): the set of explicit MPLS tunnels with
//! the same IP entry and exit points. An IOTP may hold several
//! *branches*, each corresponding to a distinct LSP — physically distinct
//! (different reply IPs) or logically distinct (same IPs, different
//! labels), cf. Fig. 2 of the paper.

use crate::label::{Label, LabelStack};
use std::collections::BTreeSet;
use std::fmt;
use std::net::Ipv4Addr;

/// An Autonomous System number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asn(pub u32);

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// One intermediate LSR observation inside an LSP: the ICMP reply address
/// and the MPLS label stack it quoted.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LspHop {
    /// Reply address of the LSR (the incoming-interface address in the
    /// common case).
    pub addr: Ipv4Addr,
    /// Quoted label stack, outermost entry first.
    pub stack: LabelStack,
}

impl LspHop {
    /// Builds a hop observation.
    pub fn new(addr: Ipv4Addr, stack: LabelStack) -> Self {
        LspHop { addr, stack }
    }

    /// The label *values* of this hop, the part LPR compares.
    pub fn labels(&self) -> Vec<Label> {
        self.stack.label_values()
    }
}

impl fmt::Debug for LspHop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:?}", self.addr, self.stack)
    }
}

/// The identity of an LSP for deduplication and persistence matching:
/// entry point, exit point, and the full (address, label-values) sequence
/// of its intermediate LSRs.
///
/// Two observations with the same key are the *same* LSP, regardless of
/// which trace, destination, or monitor produced them.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct LspKey {
    /// Ingress LER address.
    pub ingress: Ipv4Addr,
    /// Egress LER address.
    pub egress: Ipv4Addr,
    /// Per-LSR (address, label values) signature.
    pub signature: Vec<(Ipv4Addr, Vec<Label>)>,
}

/// A single observed Label Switched Path through one AS.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Lsp {
    /// AS the tunnel belongs to (the AS of every LSR in it).
    pub asn: Asn,
    /// Ingress LER (tunnel entry point).
    pub ingress: Ipv4Addr,
    /// Egress LER (tunnel exit point).
    pub egress: Ipv4Addr,
    /// Intermediate LSRs, in path order (LERs excluded).
    pub hops: Vec<LspHop>,
    /// Destination of the traceroute that revealed this LSP.
    pub dst: Ipv4Addr,
    /// AS of that destination (`None` if unmapped).
    pub dst_asn: Option<Asn>,
}

impl Lsp {
    /// The LSP's deduplication/persistence key.
    pub fn key(&self) -> LspKey {
        LspKey {
            ingress: self.ingress,
            egress: self.egress,
            signature: self.hops.iter().map(|h| (h.addr, h.labels())).collect(),
        }
    }

    /// The IOTP this LSP belongs to.
    pub fn iotp_key(&self) -> IotpKey {
        IotpKey { asn: self.asn, ingress: self.ingress, egress: self.egress }
    }

    /// Number of intermediate LSRs.
    pub fn lsr_count(&self) -> usize {
        self.hops.len()
    }
}

/// The identity of an IOTP: the AS plus the `<Ingress LER; Egress LER>`
/// address pair.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct IotpKey {
    /// Owning AS.
    pub asn: Asn,
    /// Ingress LER address.
    pub ingress: Ipv4Addr,
    /// Egress LER address.
    pub egress: Ipv4Addr,
}

/// One distinct branch of an IOTP: a unique LSP signature together with
/// the set of destination ASes it was observed carrying traffic towards
/// and how many times it was observed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Branch {
    /// Intermediate LSRs of this branch.
    pub hops: Vec<LspHop>,
    /// Destination ASes reached through this branch.
    pub dst_asns: BTreeSet<Asn>,
    /// Observation count (number of merged LSP observations).
    pub observations: usize,
}

impl Branch {
    /// Number of intermediate LSRs of this branch.
    pub fn lsr_count(&self) -> usize {
        self.hops.len()
    }
}

/// An In-Out Transit Pair: every distinct LSP observed between one
/// `<Ingress LER; Egress LER>` pair of a given AS.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Iotp {
    /// The IOTP identity.
    pub key: IotpKey,
    /// Distinct branches (LSPs), in first-observation order.
    pub branches: Vec<Branch>,
}

impl Iotp {
    /// Creates an empty IOTP for a key.
    pub fn new(key: IotpKey) -> Self {
        Iotp { key, branches: Vec::new() }
    }

    /// Merges an LSP observation into the IOTP, deduplicating by LSP
    /// signature. The LSP must share the IOTP's key.
    pub fn absorb(&mut self, lsp: &Lsp) {
        debug_assert_eq!(lsp.iotp_key(), self.key);
        let sig: Vec<(Ipv4Addr, Vec<Label>)> =
            lsp.hops.iter().map(|h| (h.addr, h.labels())).collect();
        for b in &mut self.branches {
            let bsig: Vec<(Ipv4Addr, Vec<Label>)> =
                b.hops.iter().map(|h| (h.addr, h.labels())).collect();
            if bsig == sig {
                if let Some(a) = lsp.dst_asn {
                    b.dst_asns.insert(a);
                }
                b.observations += 1;
                return;
            }
        }
        let mut dst_asns = BTreeSet::new();
        if let Some(a) = lsp.dst_asn {
            dst_asns.insert(a);
        }
        self.branches.push(Branch { hops: lsp.hops.clone(), dst_asns, observations: 1 });
    }

    /// Number of distinct branches (the IOTP's *width*, §4.3).
    pub fn width(&self) -> usize {
        self.branches.len()
    }

    /// All destination ASes reached through this IOTP.
    pub fn dst_asns(&self) -> BTreeSet<Asn> {
        self.branches.iter().flat_map(|b| b.dst_asns.iter().copied()).collect()
    }

    /// Every address observed inside the IOTP's branches (LSRs only).
    pub fn lsr_addrs(&self) -> BTreeSet<Ipv4Addr> {
        self.branches.iter().flat_map(|b| b.hops.iter().map(|h| h.addr)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Lse;

    fn ip(o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, o)
    }

    fn lsp(hops: &[(u8, u32)], dst_asn: u32) -> Lsp {
        Lsp {
            asn: Asn(65000),
            ingress: ip(1),
            egress: ip(9),
            hops: hops
                .iter()
                .map(|&(o, l)| {
                    LspHop::new(ip(o), LabelStack::from_entries(&[Lse::transit(l, 255)]))
                })
                .collect(),
            dst: Ipv4Addr::new(192, 0, 2, 1),
            dst_asn: Some(Asn(dst_asn)),
        }
    }

    #[test]
    fn identical_lsps_merge_into_one_branch() {
        let a = lsp(&[(2, 100), (3, 200)], 1);
        let b = lsp(&[(2, 100), (3, 200)], 2);
        let mut iotp = Iotp::new(a.iotp_key());
        iotp.absorb(&a);
        iotp.absorb(&b);
        assert_eq!(iotp.width(), 1);
        assert_eq!(iotp.branches[0].observations, 2);
        assert_eq!(iotp.dst_asns().len(), 2);
    }

    #[test]
    fn label_difference_makes_new_branch() {
        let a = lsp(&[(2, 100), (3, 200)], 1);
        let b = lsp(&[(2, 100), (3, 201)], 2);
        let mut iotp = Iotp::new(a.iotp_key());
        iotp.absorb(&a);
        iotp.absorb(&b);
        assert_eq!(iotp.width(), 2);
    }

    #[test]
    fn address_difference_makes_new_branch() {
        let a = lsp(&[(2, 100)], 1);
        let b = lsp(&[(4, 100)], 1);
        let mut iotp = Iotp::new(a.iotp_key());
        iotp.absorb(&a);
        iotp.absorb(&b);
        assert_eq!(iotp.width(), 2);
    }

    #[test]
    fn lsp_key_ignores_ttl_but_not_labels() {
        let mut a = lsp(&[(2, 100)], 1);
        let mut b = lsp(&[(2, 100)], 1);
        a.hops[0].stack = LabelStack::from_entries(&[Lse::transit(100, 254)]);
        b.hops[0].stack = LabelStack::from_entries(&[Lse::transit(100, 13)]);
        assert_eq!(a.key(), b.key());
        b.hops[0].stack = LabelStack::from_entries(&[Lse::transit(101, 254)]);
        assert_ne!(a.key(), b.key());
    }
}
