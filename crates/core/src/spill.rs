//! On-disk spill for the Persistence window.
//!
//! At paper scale a persistence window holds millions of [`LspKey`]s per
//! future snapshot; keeping `j` such [`std::collections::BTreeSet`]s in
//! memory defeats an out-of-core ingest. This module spills each
//! snapshot's keys to a single **sorted** file of length-prefixed byte
//! encodings and answers the Persistence filter's membership question
//! with one sequential merge-join pass per snapshot:
//!
//! 1. [`KeySpiller`] buffers a bounded number of encoded keys, sorts and
//!    dedups each full buffer into a run file, and k-way merges the runs
//!    into one sorted `<label>.spill` file on
//!    [`KeySpiller::finish`] — classic external sort, peak memory is the
//!    run buffer.
//! 2. [`persistent_flags_spilled`] encodes the cycle's surviving LSP
//!    keys once, sorts them, and streams each snapshot's spill file with
//!    a two-pointer walk — no per-probe seeks, O(L log L) CPU plus one
//!    sequential read of the window.
//!
//! The byte encoding ([`encode_key`]) is injective, so spilled
//! membership is *exactly* set membership: for any window,
//! [`persistent_flags_spilled`] equals
//! [`crate::filter::persistent_flags`] over the same key sets (see the
//! equivalence test below).

use crate::filter::FilterConfig;
use crate::lsp::{Lsp, LspKey};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Encoded keys buffered in memory before a sorted run is written
/// (bounds the spiller's peak memory).
pub const RUN_CAPACITY: usize = 64 * 1024;

/// Appends the injective byte encoding of `key` to `out` (cleared
/// first): `ingress ‖ egress ‖ u32 hop count ‖ per hop: addr ‖ u32
/// label count ‖ labels`, all big-endian. Fixed widths plus length
/// prefixes make the encoding prefix-free per field, so byte equality
/// is key equality.
pub fn encode_key(key: &LspKey, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&key.ingress.octets());
    out.extend_from_slice(&key.egress.octets());
    out.extend_from_slice(&(key.signature.len() as u32).to_be_bytes());
    for (addr, labels) in &key.signature {
        out.extend_from_slice(&addr.octets());
        out.extend_from_slice(&(labels.len() as u32).to_be_bytes());
        for l in labels {
            out.extend_from_slice(&l.value().to_be_bytes());
        }
    }
}

/// One future snapshot's LSP keys, spilled to a sorted on-disk file.
#[derive(Clone, Debug)]
pub struct SpilledKeys {
    /// The sorted spill file (`<dir>/<label>.spill`).
    pub path: PathBuf,
    /// Unique keys in the file.
    pub count: u64,
    /// File size in bytes.
    pub bytes: u64,
}

impl SpilledKeys {
    /// Marks `flags[idx] = true` for every probe `(encoded, idx)` whose
    /// encoding appears in this spill file. `probes` must be sorted by
    /// encoded bytes (duplicates allowed); one sequential pass over the
    /// file, no seeks.
    pub fn mark_members(
        &self,
        probes: &[(Vec<u8>, usize)],
        flags: &mut [bool],
    ) -> io::Result<()> {
        if probes.is_empty() {
            return Ok(());
        }
        let mut reader = RunReader::open(&self.path)?;
        let mut i = 0usize;
        while let Some(key) = reader.next_key()? {
            while i < probes.len() && probes[i].0.as_slice() < key.as_slice() {
                i += 1;
            }
            while i < probes.len() && probes[i].0.as_slice() == key.as_slice() {
                flags[probes[i].1] = true;
                i += 1;
            }
            if i == probes.len() {
                break;
            }
        }
        Ok(())
    }

    /// Removes the spill file (best-effort; callers clean up their spill
    /// directory when the cycle is done).
    pub fn delete(&self) -> io::Result<()> {
        std::fs::remove_file(&self.path)
    }
}

/// External-sort writer for one snapshot's key set.
pub struct KeySpiller {
    dir: PathBuf,
    label: String,
    buf: Vec<Vec<u8>>,
    runs: Vec<PathBuf>,
    scratch: Vec<u8>,
    run_capacity: usize,
}

impl KeySpiller {
    /// Starts spilling under `dir` (created if missing); the final file
    /// is `<dir>/<label>.spill`.
    pub fn new(dir: &Path, label: &str) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(KeySpiller {
            dir: dir.to_path_buf(),
            label: label.to_string(),
            buf: Vec::new(),
            runs: Vec::new(),
            scratch: Vec::new(),
            run_capacity: RUN_CAPACITY,
        })
    }

    /// Overrides the in-memory run capacity (tests use tiny runs to
    /// force multi-run merges).
    pub fn with_run_capacity(mut self, capacity: usize) -> Self {
        self.run_capacity = capacity.max(1);
        self
    }

    /// Adds one key (duplicates are welcome; the spill file stores each
    /// key once).
    pub fn push(&mut self, key: &LspKey) -> io::Result<()> {
        let mut scratch = std::mem::take(&mut self.scratch);
        encode_key(key, &mut scratch);
        self.buf.push(scratch.clone());
        self.scratch = scratch;
        if self.buf.len() >= self.run_capacity {
            self.flush_run()?;
        }
        Ok(())
    }

    fn flush_run(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.buf.sort_unstable();
        self.buf.dedup();
        let path = self.dir.join(format!("{}-run{}.spillrun", self.label, self.runs.len()));
        let mut w = BufWriter::new(File::create(&path)?);
        for key in &self.buf {
            write_record(&mut w, key)?;
        }
        w.flush()?;
        self.buf.clear();
        self.runs.push(path);
        Ok(())
    }

    /// Merges every run into the final sorted spill file and returns its
    /// handle. Run files are removed.
    pub fn finish(mut self) -> io::Result<SpilledKeys> {
        self.flush_run()?;
        let path = self.dir.join(format!("{}.spill", self.label));
        let mut out = BufWriter::new(File::create(&path)?);
        let mut count = 0u64;

        // K-way merge with global dedup: repeatedly take the smallest
        // head, emit it once, and advance every reader holding it.
        let mut readers: Vec<RunReader> =
            self.runs.iter().map(|p| RunReader::open(p)).collect::<io::Result<_>>()?;
        let mut heads: Vec<Option<Vec<u8>>> =
            readers.iter_mut().map(|r| r.next_key()).collect::<io::Result<_>>()?;
        while let Some(min) = heads.iter().flatten().min().cloned() {
            write_record(&mut out, &min)?;
            count += 1;
            for (head, reader) in heads.iter_mut().zip(&mut readers) {
                while head.as_deref() == Some(min.as_slice()) {
                    *head = reader.next_key()?;
                }
            }
        }
        out.flush()?;
        drop(out);
        for run in &self.runs {
            let _ = std::fs::remove_file(run);
        }
        let bytes = std::fs::metadata(&path)?.len();
        Ok(SpilledKeys { path, count, bytes })
    }
}

fn write_record(w: &mut impl Write, key: &[u8]) -> io::Result<()> {
    w.write_all(&(key.len() as u32).to_be_bytes())?;
    w.write_all(key)
}

/// Sequential reader over one length-prefixed sorted key file.
struct RunReader {
    r: BufReader<File>,
}

impl RunReader {
    fn open(path: &Path) -> io::Result<Self> {
        Ok(RunReader { r: BufReader::new(File::open(path)?) })
    }

    fn next_key(&mut self) -> io::Result<Option<Vec<u8>>> {
        let mut len = [0u8; 4];
        match self.r.read_exact(&mut len) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let mut key = vec![0u8; u32::from_be_bytes(len) as usize];
        self.r.read_exact(&mut key)?;
        Ok(Some(key))
    }
}

/// The spilled counterpart of [`crate::filter::persistent_flags`]:
/// `flags[i]` is whether `lsps[i]`'s key appears in at least one of the
/// window's spill files. Identical semantics — window truncated to
/// `config.persistence_window` snapshots, `persistence_window == 0`
/// keeps everything — via one merge-join pass per snapshot.
pub fn persistent_flags_spilled(
    lsps: &[Lsp],
    window: &[SpilledKeys],
    config: &FilterConfig,
) -> io::Result<Vec<bool>> {
    if config.persistence_window == 0 {
        return Ok(vec![true; lsps.len()]);
    }
    let window = &window[..config.persistence_window.min(window.len())];
    let mut flags = vec![false; lsps.len()];
    if window.is_empty() || lsps.is_empty() {
        return Ok(flags);
    }
    let mut probes: Vec<(Vec<u8>, usize)> = lsps
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let mut b = Vec::new();
            encode_key(&l.key(), &mut b);
            (b, i)
        })
        .collect();
    probes.sort_unstable();
    for snapshot in window {
        snapshot.mark_members(&probes, &mut flags)?;
    }
    Ok(flags)
}

/// Spills an iterator of keys under `dir` as `<label>.spill`.
pub fn spill_keys<'a>(
    keys: impl IntoIterator<Item = &'a LspKey>,
    dir: &Path,
    label: &str,
) -> io::Result<SpilledKeys> {
    let mut spiller = KeySpiller::new(dir, label)?;
    for key in keys {
        spiller.push(key)?;
    }
    spiller.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::persistent_flags;
    use crate::label::{LabelStack, Lse};
    use crate::lsp::{Asn, LspHop};
    use std::collections::BTreeSet;
    use std::net::Ipv4Addr;

    fn ip(a: u8, o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, a, 0, o)
    }

    fn lsp(asn: u8, labels: &[u32]) -> Lsp {
        Lsp {
            asn: Asn(asn as u32),
            ingress: ip(asn, 1),
            egress: ip(asn, 9),
            hops: labels
                .iter()
                .enumerate()
                .map(|(i, &l)| {
                    LspHop::new(
                        ip(asn, 2 + i as u8),
                        LabelStack::from_entries(&[Lse::transit(l, 255)]),
                    )
                })
                .collect(),
            dst: Ipv4Addr::new(192, 0, 2, 1),
            dst_asn: Some(Asn(100)),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lpr-spill-{}-{}", name, std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn encoding_is_injective_on_distinct_keys() {
        // Keys engineered so a naive (unprefixed) concatenation would
        // collide: hop boundaries move but the flat byte content cannot.
        let a = lsp(1, &[100, 200]).key();
        let b = lsp(1, &[100]).key();
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        encode_key(&a, &mut ea);
        encode_key(&b, &mut eb);
        assert_ne!(ea, eb);
        // Same key encodes identically.
        let mut ea2 = Vec::new();
        encode_key(&lsp(1, &[100, 200]).key(), &mut ea2);
        assert_eq!(ea, ea2);
    }

    #[test]
    fn spilled_flags_match_in_memory_flags() {
        let dir = tmp("equiv");
        let lsps: Vec<Lsp> =
            (1..=30u8).map(|a| lsp(a, &[a as u32 * 10, a as u32 * 10 + 1])).collect();
        // Window: snapshot 0 re-observes ASes 1..=10, snapshot 1 ASes
        // 5..=20; AS 21+ never persists.
        let snap = |range: std::ops::RangeInclusive<u8>| -> BTreeSet<LspKey> {
            range.map(|a| lsp(a, &[a as u32 * 10, a as u32 * 10 + 1]).key()).collect()
        };
        let mem = vec![snap(1..=10), snap(5..=20)];
        let spilled: Vec<SpilledKeys> = mem
            .iter()
            .enumerate()
            .map(|(i, s)| spill_keys(s.iter(), &dir, &format!("snap{i}")).unwrap())
            .collect();

        let config = FilterConfig::default();
        let expect = persistent_flags(&lsps, &mem, &config);
        let got = persistent_flags_spilled(&lsps, &spilled, &config).unwrap();
        assert_eq!(got, expect);
        assert_eq!(got.iter().filter(|&&f| f).count(), 20);

        // Window-0 keeps everything in both paths.
        let none = FilterConfig { persistence_window: 0, ..Default::default() };
        assert_eq!(
            persistent_flags_spilled(&lsps, &spilled, &none).unwrap(),
            persistent_flags(&lsps, &mem, &none),
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multi_run_merge_dedups_and_sorts() {
        let dir = tmp("runs");
        let mut spiller =
            KeySpiller::new(&dir, "multi").unwrap().with_run_capacity(4);
        // 25 keys pushed twice in interleaved order -> several runs with
        // overlapping content.
        for round in 0..2 {
            for a in 1..=25u8 {
                let a = if round == 0 { a } else { 26 - a };
                spiller.push(&lsp(a, &[7]).key()).unwrap();
            }
        }
        let spilled = spiller.finish().unwrap();
        assert_eq!(spilled.count, 25, "dedup across runs");

        // The file is sorted and readable back.
        let mut r = RunReader::open(&spilled.path).unwrap();
        let mut prev: Option<Vec<u8>> = None;
        let mut n = 0;
        while let Some(k) = r.next_key().unwrap() {
            if let Some(p) = &prev {
                assert!(p < &k, "strictly ascending");
            }
            prev = Some(k);
            n += 1;
        }
        assert_eq!(n, 25);
        assert!(std::fs::read_dir(&dir).unwrap().count() == 1, "run files removed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn window_truncation_matches_config() {
        let dir = tmp("window");
        let key = lsp(1, &[5]).key();
        let empty = spill_keys([].iter(), &dir, "empty").unwrap();
        let hit = spill_keys([key].iter(), &dir, "hit").unwrap();
        let lsps = vec![lsp(1, &[5])];
        // j = 1 sees only the empty first snapshot.
        let j1 = FilterConfig { persistence_window: 1, ..Default::default() };
        let flags =
            persistent_flags_spilled(&lsps, &[empty.clone(), hit.clone()], &j1).unwrap();
        assert_eq!(flags, vec![false]);
        // j = 2 reaches the hit.
        let j2 = FilterConfig { persistence_window: 2, ..Default::default() };
        let flags = persistent_flags_spilled(&lsps, &[empty, hit], &j2).unwrap();
        assert_eq!(flags, vec![true]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
