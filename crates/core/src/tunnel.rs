//! Explicit MPLS tunnel extraction from traceroute traces (paper §2.3).
//!
//! An *explicit* tunnel is one that is fully revealed by traceroute: the
//! ingress LER copies the IP TTL into the LSE TTL (`ttl-propagate`), so
//! intermediate LSRs appear as hops, and the LSRs implement RFC 4950, so
//! each reply quotes the MPLS label stack the probe carried.
//!
//! On such a trace the tunnel shows up as a maximal run of label-bearing
//! hops. The hop *before* the run is the Ingress LER (the probe expired
//! there before being labelled); with penultimate-hop popping (PHP, the
//! default on most platforms) the last labelled hop is the penultimate
//! LSR and the hop *after* the run is the Egress LER. With
//! ultimate-hop popping and `explicit-null`, the Egress LER itself quotes
//! the reserved label 0 and terminates the run.
//!
//! Extraction never guesses across holes: a tunnel whose ingress or
//! egress neighbourhood is anonymous, or that contains an anonymous LSR,
//! is reported with [`RawTunnel::incomplete`] set, which the
//! `IncompleteLsp` filter later discards (Table 1's first row).

use crate::label::{Label, LabelStack};
use crate::trace::Trace;
use std::fmt;
use std::net::Ipv4Addr;

/// Why a raw tunnel is considered incomplete.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TunnelError {
    /// The hop before the first labelled hop is anonymous or absent, so
    /// the Ingress LER is unknown.
    MissingIngress,
    /// The hop after the last labelled hop is anonymous or absent, so the
    /// Egress LER is unknown.
    MissingEgress,
    /// An LSR inside the run did not reply (anonymous router) or a probe
    /// TTL is missing from the trace.
    AnonymousLsr,
}

impl fmt::Display for TunnelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TunnelError::MissingIngress => "ingress LER unknown",
            TunnelError::MissingEgress => "egress LER unknown",
            TunnelError::AnonymousLsr => "anonymous LSR inside the LSP",
        };
        f.write_str(s)
    }
}

/// A tunnel as extracted from one trace, before AS attribution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RawTunnel {
    /// Ingress LER address, when identified.
    pub ingress: Option<Ipv4Addr>,
    /// Egress LER address, when identified.
    pub egress: Option<Ipv4Addr>,
    /// Labelled hops: `(reply address, quoted stack)`, in path order.
    /// Under ultimate-hop popping with explicit-null, the final
    /// explicit-null hop is *not* part of this list (it is the egress).
    pub lsrs: Vec<(Ipv4Addr, LabelStack)>,
    /// Destination of the enclosing trace.
    pub dst: Ipv4Addr,
    /// Vantage point of the enclosing trace.
    pub src: Ipv4Addr,
    /// Why the tunnel is unusable, if it is.
    pub incomplete: Option<TunnelError>,
}

impl RawTunnel {
    /// Number of intermediate LSRs revealed.
    pub fn lsr_count(&self) -> usize {
        self.lsrs.len()
    }

    /// Whether the tunnel is complete (usable by the filter pipeline).
    pub fn is_complete(&self) -> bool {
        self.incomplete.is_none() && self.ingress.is_some() && self.egress.is_some()
    }
}

/// Extracts every explicit MPLS tunnel from a trace.
///
/// Returns the tunnels in path order. Tunnels that cannot be fully
/// delimited are still returned, with [`RawTunnel::incomplete`] set, so
/// that the filtering stage can account for them (Table 1).
pub fn extract_tunnels(trace: &Trace) -> Vec<RawTunnel> {
    let mut tunnels = Vec::new();
    extract_tunnels_into(trace, &mut tunnels);
    tunnels
}

/// [`extract_tunnels`] appending into a caller-owned buffer, so
/// per-trace streaming loops ([`crate::stream::CycleAccumulator`]) can
/// reuse one scratch `Vec` instead of allocating per trace.
///
/// Existing contents of `tunnels` are left untouched.
pub fn extract_tunnels_into(trace: &Trace, tunnels: &mut Vec<RawTunnel>) {
    let hops = &trace.hops;
    let mut i = 0;
    while i < hops.len() {
        if !hops[i].is_labelled() {
            i += 1;
            continue;
        }
        // Found the start of a labelled run at index `i`.
        let run_start = i;
        let mut run_end = i; // inclusive index of last labelled hop
        let mut interior_anonymous = false;
        let mut j = i + 1;
        while j < hops.len() {
            if hops[j].is_labelled() {
                // TTL gap between consecutive labelled hops means probes
                // in between went unanswered: anonymous LSRs.
                if hops[j].probe_ttl != hops[j - 1].probe_ttl + 1 || !hops[j - 1].is_responsive()
                {
                    interior_anonymous = true;
                }
                run_end = j;
                j += 1;
            } else if !hops[j].is_responsive() {
                // An anonymous hop: it may be an anonymous LSR (if more
                // labelled hops follow) or the end of the run. Peek ahead.
                let mut k = j + 1;
                let mut continues = false;
                while k < hops.len() {
                    if hops[k].is_labelled() {
                        continues = true;
                        break;
                    }
                    if hops[k].is_responsive() {
                        break;
                    }
                    k += 1;
                }
                if continues {
                    interior_anonymous = true;
                    run_end = k;
                    j = k + 1;
                } else {
                    break;
                }
            } else {
                break;
            }
        }

        let mut lsrs: Vec<(Ipv4Addr, LabelStack)> = hops[run_start..=run_end]
            .iter()
            .filter(|h| h.is_labelled())
            .map(|h| (h.addr.expect("labelled hop has an address"), h.stack.clone()))
            .collect();

        // TTL continuity inside the run (beyond anonymous-hop records).
        for w in hops[run_start..=run_end].windows(2) {
            if w[1].probe_ttl != w[0].probe_ttl + 1 {
                interior_anonymous = true;
            }
        }

        // Ingress LER: the responsive, unlabelled hop immediately before.
        let ingress = if run_start > 0 {
            let prev = &hops[run_start - 1];
            if prev.is_responsive()
                && !prev.is_labelled()
                && prev.probe_ttl + 1 == hops[run_start].probe_ttl
            {
                prev.addr
            } else {
                None
            }
        } else {
            None
        };

        // Ultimate-hop popping with explicit-null: the run's final hop
        // quotes the reserved label 0 and *is* the Egress LER.
        let uhp_egress = lsrs
            .last()
            .and_then(|(addr, stack)| stack.top().map(|l| (*addr, l.label)))
            .filter(|&(_, l)| l == Label::IPV4_EXPLICIT_NULL)
            .map(|(addr, _)| addr);

        let egress = if let Some(e) = uhp_egress {
            lsrs.pop();
            Some(e)
        } else if run_end + 1 < hops.len() {
            let next = &hops[run_end + 1];
            if next.is_responsive() && next.probe_ttl == hops[run_end].probe_ttl + 1 {
                next.addr
            } else {
                None
            }
        } else if trace.reached && run_end == hops.len() - 1 {
            // Tunnel ran straight into the destination: shouldn't happen
            // for transit tunnels; leave the egress unknown.
            None
        } else {
            None
        };

        let incomplete = if interior_anonymous {
            Some(TunnelError::AnonymousLsr)
        } else if ingress.is_none() {
            Some(TunnelError::MissingIngress)
        } else if egress.is_none() {
            Some(TunnelError::MissingEgress)
        } else {
            None
        };

        tunnels.push(RawTunnel {
            ingress,
            egress,
            lsrs,
            dst: trace.dst,
            src: trace.src,
            incomplete,
        });

        i = run_end + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Lse;
    use crate::trace::Hop;

    fn ip(o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, o)
    }

    fn lse(l: u32) -> Lse {
        Lse::transit(l, 250)
    }

    fn base_trace() -> Trace {
        Trace::new(Ipv4Addr::new(192, 0, 2, 1), Ipv4Addr::new(198, 51, 100, 7))
    }

    #[test]
    fn simple_php_tunnel() {
        let mut t = base_trace();
        t.push_hop(Hop::responsive(1, ip(1))); // ingress LER
        t.push_hop(Hop::labelled(2, ip(2), &[lse(100)]));
        t.push_hop(Hop::labelled(3, ip(3), &[lse(200)])); // penultimate (PHP)
        t.push_hop(Hop::responsive(4, ip(4))); // egress LER
        t.push_hop(Hop::responsive(5, ip(5)));
        let tun = extract_tunnels(&t);
        assert_eq!(tun.len(), 1);
        let tun = &tun[0];
        assert!(tun.is_complete());
        assert_eq!(tun.ingress, Some(ip(1)));
        assert_eq!(tun.egress, Some(ip(4)));
        assert_eq!(tun.lsr_count(), 2);
    }

    #[test]
    fn uhp_explicit_null_egress() {
        let mut t = base_trace();
        t.push_hop(Hop::responsive(1, ip(1)));
        t.push_hop(Hop::labelled(2, ip(2), &[lse(100)]));
        t.push_hop(Hop::labelled(3, ip(3), &[lse(0)])); // explicit-null => egress LER
        t.push_hop(Hop::responsive(4, ip(4)));
        let tun = extract_tunnels(&t);
        assert_eq!(tun.len(), 1);
        assert!(tun[0].is_complete());
        assert_eq!(tun[0].egress, Some(ip(3)));
        assert_eq!(tun[0].lsr_count(), 1);
    }

    #[test]
    fn missing_ingress_is_incomplete() {
        let mut t = base_trace();
        t.push_hop(Hop::anonymous(1));
        t.push_hop(Hop::labelled(2, ip(2), &[lse(100)]));
        t.push_hop(Hop::responsive(3, ip(3)));
        let tun = extract_tunnels(&t);
        assert_eq!(tun[0].incomplete, Some(TunnelError::MissingIngress));
    }

    #[test]
    fn tunnel_at_trace_start_has_no_ingress() {
        let mut t = base_trace();
        t.push_hop(Hop::labelled(1, ip(2), &[lse(100)]));
        t.push_hop(Hop::responsive(2, ip(3)));
        let tun = extract_tunnels(&t);
        assert_eq!(tun[0].incomplete, Some(TunnelError::MissingIngress));
    }

    #[test]
    fn missing_egress_is_incomplete() {
        let mut t = base_trace();
        t.push_hop(Hop::responsive(1, ip(1)));
        t.push_hop(Hop::labelled(2, ip(2), &[lse(100)]));
        t.push_hop(Hop::anonymous(3));
        t.push_hop(Hop::responsive(4, ip(4)));
        let tun = extract_tunnels(&t);
        assert_eq!(tun[0].incomplete, Some(TunnelError::MissingEgress));
    }

    #[test]
    fn anonymous_lsr_inside_run() {
        let mut t = base_trace();
        t.push_hop(Hop::responsive(1, ip(1)));
        t.push_hop(Hop::labelled(2, ip(2), &[lse(100)]));
        t.push_hop(Hop::anonymous(3));
        t.push_hop(Hop::labelled(4, ip(4), &[lse(300)]));
        t.push_hop(Hop::responsive(5, ip(5)));
        let tun = extract_tunnels(&t);
        assert_eq!(tun.len(), 1);
        assert_eq!(tun[0].incomplete, Some(TunnelError::AnonymousLsr));
    }

    #[test]
    fn ttl_gap_inside_run_is_anonymous_lsr() {
        let mut t = base_trace();
        t.push_hop(Hop::responsive(1, ip(1)));
        t.push_hop(Hop::labelled(2, ip(2), &[lse(100)]));
        // probe TTL 3 entirely missing from the hop list
        t.push_hop(Hop::labelled(4, ip(4), &[lse(300)]));
        t.push_hop(Hop::responsive(5, ip(5)));
        let tun = extract_tunnels(&t);
        assert_eq!(tun[0].incomplete, Some(TunnelError::AnonymousLsr));
    }

    #[test]
    fn two_tunnels_in_one_trace() {
        let mut t = base_trace();
        t.push_hop(Hop::responsive(1, ip(1)));
        t.push_hop(Hop::labelled(2, ip(2), &[lse(100)]));
        t.push_hop(Hop::responsive(3, ip(3)));
        t.push_hop(Hop::responsive(4, ip(4)));
        t.push_hop(Hop::labelled(5, ip(5), &[lse(700)]));
        t.push_hop(Hop::responsive(6, ip(6)));
        let tun = extract_tunnels(&t);
        assert_eq!(tun.len(), 2);
        assert!(tun.iter().all(RawTunnel::is_complete));
        assert_eq!(tun[0].ingress, Some(ip(1)));
        assert_eq!(tun[1].ingress, Some(ip(4)));
    }

    #[test]
    fn no_mpls_no_tunnels() {
        let mut t = base_trace();
        t.push_hop(Hop::responsive(1, ip(1)));
        t.push_hop(Hop::responsive(2, ip(2)));
        assert!(extract_tunnels(&t).is_empty());
    }

    #[test]
    fn tunnel_ending_the_trace_has_no_egress() {
        let mut t = base_trace();
        t.push_hop(Hop::responsive(1, ip(1)));
        t.push_hop(Hop::labelled(2, ip(2), &[lse(100)]));
        let tun = extract_tunnels(&t);
        assert_eq!(tun[0].incomplete, Some(TunnelError::MissingEgress));
    }

    #[test]
    fn label_stack_preserved() {
        let mut t = base_trace();
        t.push_hop(Hop::responsive(1, ip(1)));
        t.push_hop(Hop::labelled(2, ip(2), &[lse(100), lse(9)]));
        t.push_hop(Hop::responsive(3, ip(3)));
        let tun = extract_tunnels(&t);
        assert_eq!(tun[0].lsrs[0].1.depth(), 2);
    }
}
