//! # lpr-chaos — seeded fault injection for the LPR pipeline
//!
//! Real Ark campaigns are messy: probes are lost, routers rate-limit
//! ICMP, PHP makes the penultimate LSR silent about its labels, RFC 4950
//! extensions arrive truncated, replies duplicate or reorder, and warts
//! dumps pick up byte-level corruption on disk. The paper's LPR filters
//! exist precisely to survive that noise — this crate produces the
//! noise, deterministically, so the rest of the workspace can prove it
//! degrades gracefully instead of aborting.
//!
//! Two fault surfaces:
//!
//! * [`FaultPlan`] — probe/reply-level faults. Every decision derives
//!   from `(seed, fault kind, vp, dst, ttl)` through splitmix64, with no
//!   hidden RNG state, so a plan replays bit-identically: the same plan
//!   over the same traces yields the same degraded traces on every run
//!   and any thread count.
//! * [`corrupt_warts_bytes`] — byte-level corruption of an encoded
//!   warts stream (bit flips, truncated bodies, bad declared lengths,
//!   smashed magics), exercising the lenient reader's skip-and-resync
//!   paths.
//!
//! ```
//! use lpr_chaos::FaultPlan;
//! use lpr_core::trace::{Hop, Trace};
//! use std::net::Ipv4Addr;
//!
//! let mut t = Trace::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(192, 0, 2, 9));
//! t.push_hop(Hop::responsive(1, Ipv4Addr::new(10, 0, 0, 2)));
//! let plan = FaultPlan::uniform(7, 0.5);
//! let mut a = vec![t.clone()];
//! let mut b = vec![t];
//! let ca = plan.degrade_traces(&mut a);
//! let cb = plan.degrade_traces(&mut b);
//! assert_eq!(a, b, "same plan, same faults");
//! assert_eq!(ca, cb);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corrupt;
mod plan;

pub use corrupt::{corrupt_warts_bytes, CorruptionCounts, WARTS_MAGIC_BE};
pub use plan::{FaultCounts, FaultPlan};

/// The splitmix64 mixing function — the same generator `netsim` and the
/// `rand` shim use, copied here so fault decisions share the workspace's
/// deterministic-by-construction randomness without a dependency edge.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}
