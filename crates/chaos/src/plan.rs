//! Probe/reply-level fault plans.

use crate::splitmix64;
use lpr_core::label::LabelStack;
use lpr_core::trace::{Hop, Trace};
use std::net::Ipv4Addr;

// Per-fault-kind salts: the same (vp, dst, ttl) rolls independently for
// each fault, so e.g. raising the loss rate never reshuffles which hops
// go PHP-silent.
const LOSS_SALT: u64 = 0x4C4F_5353_0000_0001;
const RATE_LIMIT_SALT: u64 = 0x5241_5445_0000_0002;
const PHP_SILENT_SALT: u64 = 0x5048_5053_0000_0003;
const TRUNCATE_SALT: u64 = 0x5452_554E_0000_0004;
const DUPLICATE_SALT: u64 = 0x4455_504C_0000_0005;
const REORDER_SALT: u64 = 0x5245_4F52_0000_0006;
const TRIGGER_LOSS_SALT: u64 = 0x5452_4947_0000_0007;
const DPR_RATE_SALT: u64 = 0x4450_5252_0000_0008;

/// A deterministic, seeded fault plan for a measurement campaign.
///
/// Each field is an independent fault probability in `[0, 1]`. All
/// decisions are pure functions of `(seed, fault kind, identifiers)` —
/// see the predicate methods — so the plan is `Copy`, `Sync`-friendly
/// and replays identically anywhere.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed every fault decision derives from.
    pub seed: u64,
    /// Per-probe reply loss (the hop turns anonymous).
    pub probe_loss: f64,
    /// Per-probe ICMP rate limiting at the replying router (the hop
    /// turns anonymous; keyed by router, so a rate-limited router drops
    /// a correlated share of its replies).
    pub rate_limit: f64,
    /// Per-*router* PHP-style label silence: the router responds but
    /// never quotes its RFC 4950 stack, hiding the tunnel from LPR.
    pub php_silence: f64,
    /// Per-hop truncation of the quoted label stack to its top entry
    /// (a cut RFC 4950 extension).
    pub truncate_ext: f64,
    /// Per-hop duplicated reply (the same probe answered twice).
    pub duplicate_reply: f64,
    /// Per-hop reply reordering (swapped with its successor).
    pub reorder_reply: f64,
    /// Per-candidate loss of a revelation trigger: the artifact reply
    /// that would have fired the tunnel-revelation phase never arrives,
    /// so the candidate is silently not re-probed. Only the revelation
    /// phase consults this — legacy campaigns are unaffected.
    pub trigger_loss: f64,
    /// Per-flow ICMP rate limiting of DPR (revelation) re-probe walks:
    /// the targeted walk elicits nothing and contributes no revealed
    /// path. Only the revelation phase consults this.
    pub dpr_rate_limit: f64,
    /// Byte-level corruption rate for encoded warts streams (consumed
    /// by [`crate::corrupt_warts_bytes`], carried here so one plan
    /// describes a whole chaos run).
    pub corruption: f64,
}

impl FaultPlan {
    /// The quiet plan: a seed but no faults.
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            probe_loss: 0.0,
            rate_limit: 0.0,
            php_silence: 0.0,
            truncate_ext: 0.0,
            duplicate_reply: 0.0,
            reorder_reply: 0.0,
            trigger_loss: 0.0,
            dpr_rate_limit: 0.0,
            corruption: 0.0,
        }
    }

    /// A plan exercising every fault at `rate` (structural faults —
    /// duplication and reordering — at half of it, since each damaged
    /// trace is quarantined wholesale).
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            probe_loss: rate,
            rate_limit: rate / 2.0,
            php_silence: rate,
            truncate_ext: rate,
            duplicate_reply: rate / 2.0,
            reorder_reply: rate / 2.0,
            trigger_loss: rate,
            dpr_rate_limit: rate,
            corruption: rate,
        }
    }

    /// Whether the plan injects nothing.
    pub fn is_quiet(&self) -> bool {
        self.probe_loss <= 0.0
            && self.rate_limit <= 0.0
            && self.php_silence <= 0.0
            && self.truncate_ext <= 0.0
            && self.duplicate_reply <= 0.0
            && self.reorder_reply <= 0.0
            && self.trigger_loss <= 0.0
            && self.dpr_rate_limit <= 0.0
            && self.corruption <= 0.0
    }

    fn roll(&self, salt: u64, key: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let h = splitmix64(self.seed ^ salt ^ splitmix64(key));
        (h >> 11) as f64 / ((1u64 << 53) as f64) < rate
    }

    fn probe_key(vp: Ipv4Addr, dst: Ipv4Addr, ttl: u8) -> u64 {
        ((u32::from(vp) as u64) << 32 | u32::from(dst) as u64) ^ ((ttl as u64) << 1)
    }

    /// Whether this probe's reply is lost in transit.
    pub fn lose_probe(&self, vp: Ipv4Addr, dst: Ipv4Addr, ttl: u8) -> bool {
        self.roll(LOSS_SALT, Self::probe_key(vp, dst, ttl), self.probe_loss)
    }

    /// Whether the replying router rate-limits this probe's ICMP.
    pub fn rate_limited(&self, router: Ipv4Addr, ttl: u8) -> bool {
        self.roll(RATE_LIMIT_SALT, (u32::from(router) as u64) << 8 | ttl as u64, self.rate_limit)
    }

    /// Whether `router` is PHP-silent for the whole campaign (responds,
    /// but never quotes a label stack).
    pub fn php_silent(&self, router: Ipv4Addr) -> bool {
        self.roll(PHP_SILENT_SALT, u32::from(router) as u64, self.php_silence)
    }

    /// Whether this hop's quoted stack arrives truncated to one entry.
    pub fn truncate_stack(&self, router: Ipv4Addr, ttl: u8) -> bool {
        self.roll(TRUNCATE_SALT, (u32::from(router) as u64) << 8 | ttl as u64, self.truncate_ext)
    }

    /// Whether this probe's reply is duplicated.
    pub fn duplicate_reply(&self, vp: Ipv4Addr, dst: Ipv4Addr, ttl: u8) -> bool {
        self.roll(DUPLICATE_SALT, Self::probe_key(vp, dst, ttl), self.duplicate_reply)
    }

    /// Whether this reply overtakes its successor (arrives reordered).
    pub fn reorder_reply(&self, vp: Ipv4Addr, dst: Ipv4Addr, ttl: u8) -> bool {
        self.roll(REORDER_SALT, Self::probe_key(vp, dst, ttl), self.reorder_reply)
    }

    /// Whether the revelation trigger for the `(ingress, egress)`
    /// candidate pair is lost before detection fires.
    pub fn trigger_lost(&self, ingress: Ipv4Addr, egress: Ipv4Addr) -> bool {
        self.roll(
            TRIGGER_LOSS_SALT,
            (u32::from(ingress) as u64) << 32 | u32::from(egress) as u64,
            self.trigger_loss,
        )
    }

    /// Whether the `k`-th DPR re-probe walk towards `egress` is
    /// rate-limited away (keyed by target, so a limited egress drops a
    /// correlated share of its revelation walks).
    pub fn dpr_rate_limited(&self, egress: Ipv4Addr, k: usize) -> bool {
        self.roll(
            DPR_RATE_SALT,
            (u32::from(egress) as u64) << 16 | (k as u64 & 0xFFFF),
            self.dpr_rate_limit,
        )
    }

    /// Applies the reply-content faults (loss, rate limiting, PHP
    /// silence, stack truncation) to one trace in place.
    pub fn degrade_replies(&self, trace: &mut Trace, counts: &mut FaultCounts) {
        let (vp, dst) = (trace.src, trace.dst);
        for hop in &mut trace.hops {
            let addr = match hop.addr {
                Some(a) => a,
                None => continue,
            };
            let ttl = hop.probe_ttl;
            if self.lose_probe(vp, dst, ttl) {
                *hop = Hop::anonymous(ttl);
                counts.lost += 1;
                continue;
            }
            if self.rate_limited(addr, ttl) {
                *hop = Hop::anonymous(ttl);
                counts.rate_limited += 1;
                continue;
            }
            if hop.is_labelled() && self.php_silent(addr) {
                hop.stack = LabelStack::empty();
                counts.php_silenced += 1;
                continue;
            }
            if hop.stack.depth() > 1 && self.truncate_stack(addr, ttl) {
                hop.stack = LabelStack::from_entries(&hop.stack.entries()[..1]);
                counts.truncated_exts += 1;
            }
        }
    }

    /// Applies the structural faults (duplicated and reordered replies)
    /// to one trace in place. The resulting hop list may violate the
    /// strictly-increasing-TTL invariant — that is the point: such a
    /// trace is exactly what `lpr_core`'s quarantine must catch.
    pub fn degrade_structure(&self, trace: &mut Trace, counts: &mut FaultCounts) {
        let (vp, dst) = (trace.src, trace.dst);
        if trace.hops.iter().any(|h| self.duplicate_reply(vp, dst, h.probe_ttl)) {
            let mut hops = Vec::with_capacity(trace.hops.len() + 2);
            for hop in trace.hops.drain(..) {
                let dup = self.duplicate_reply(vp, dst, hop.probe_ttl);
                if dup {
                    hops.push(hop.clone());
                    counts.duplicated += 1;
                }
                hops.push(hop);
            }
            trace.hops = hops;
        }
        let len = trace.hops.len();
        for i in 0..len.saturating_sub(1) {
            if self.reorder_reply(vp, dst, trace.hops[i].probe_ttl)
                && trace.hops[i].probe_ttl != trace.hops[i + 1].probe_ttl
            {
                trace.hops.swap(i, i + 1);
                counts.reordered += 1;
            }
        }
    }

    /// Applies every reply-level fault to one trace in place.
    pub fn degrade_trace(&self, trace: &mut Trace, counts: &mut FaultCounts) {
        self.degrade_replies(trace, counts);
        self.degrade_structure(trace, counts);
    }

    /// Degrades a whole campaign in place, returning the tally of
    /// injected faults.
    pub fn degrade_traces(&self, traces: &mut [Trace]) -> FaultCounts {
        let mut counts = FaultCounts::default();
        for trace in traces {
            self.degrade_trace(trace, &mut counts);
        }
        counts
    }
}

/// Tally of faults a plan actually injected into a set of traces.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Replies lost in transit.
    pub lost: u64,
    /// Replies dropped by router-side ICMP rate limiting.
    pub rate_limited: u64,
    /// Labelled hops whose stack was hidden by PHP silence.
    pub php_silenced: u64,
    /// Hops whose quoted stack was truncated to its top entry.
    pub truncated_exts: u64,
    /// Duplicated replies inserted.
    pub duplicated: u64,
    /// Adjacent reply pairs swapped.
    pub reordered: u64,
    /// Revelation triggers whose artifact reply was lost.
    pub trigger_replies_lost: u64,
    /// DPR revelation walks suppressed by ICMP rate limiting.
    pub dpr_rate_limited: u64,
}

impl FaultCounts {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.lost
            + self.rate_limited
            + self.php_silenced
            + self.truncated_exts
            + self.duplicated
            + self.reordered
            + self.trigger_replies_lost
            + self.dpr_rate_limited
    }

    /// Accumulates another tally.
    pub fn merge(&mut self, other: &FaultCounts) {
        self.lost += other.lost;
        self.rate_limited += other.rate_limited;
        self.php_silenced += other.php_silenced;
        self.truncated_exts += other.truncated_exts;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.trigger_replies_lost += other.trigger_replies_lost;
        self.dpr_rate_limited += other.dpr_rate_limited;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpr_core::label::Lse;

    fn ip(o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, o)
    }

    fn sample_trace(dst_octet: u8) -> Trace {
        let mut t = Trace::new(ip(1), Ipv4Addr::new(192, 0, 2, dst_octet));
        t.push_hop(Hop::responsive(1, ip(2)));
        t.push_hop(Hop::labelled(2, ip(3), &[Lse::transit(100, 254), Lse::transit(7, 254)]));
        t.push_hop(Hop::labelled(3, ip(4), &[Lse::transit(200, 253)]));
        t.push_hop(Hop::responsive(4, Ipv4Addr::new(192, 0, 2, dst_octet)));
        t.reached = true;
        t
    }

    #[test]
    fn quiet_plan_is_identity() {
        let plan = FaultPlan::none(42);
        assert!(plan.is_quiet());
        let mut traces: Vec<Trace> = (0..32).map(sample_trace).collect();
        let orig = traces.clone();
        let counts = plan.degrade_traces(&mut traces);
        assert_eq!(counts, FaultCounts::default());
        assert_eq!(traces, orig);
    }

    #[test]
    fn degradation_is_deterministic() {
        let plan = FaultPlan::uniform(7, 0.3);
        let mut a: Vec<Trace> = (0..64).map(sample_trace).collect();
        let mut b = a.clone();
        let ca = plan.degrade_traces(&mut a);
        let cb = plan.degrade_traces(&mut b);
        assert_eq!(a, b);
        assert_eq!(ca, cb);
        assert!(ca.total() > 0, "30% across six faults must fire on 64 traces");
    }

    #[test]
    fn seeds_vary_the_fault_pattern() {
        let mut a: Vec<Trace> = (0..64).map(sample_trace).collect();
        let mut b = a.clone();
        FaultPlan::uniform(1, 0.3).degrade_traces(&mut a);
        FaultPlan::uniform(2, 0.3).degrade_traces(&mut b);
        assert_ne!(a, b, "different seeds, different degradation");
    }

    #[test]
    fn full_rates_hit_every_hop() {
        let mut plan = FaultPlan::none(0);
        plan.probe_loss = 1.0;
        let mut t = sample_trace(9);
        let mut counts = FaultCounts::default();
        plan.degrade_replies(&mut t, &mut counts);
        assert!(t.hops.iter().all(|h| !h.is_responsive()));
        assert_eq!(counts.lost, 4);
    }

    #[test]
    fn php_silence_hides_labels_but_keeps_replies() {
        let mut plan = FaultPlan::none(0);
        plan.php_silence = 1.0;
        let mut t = sample_trace(9);
        let mut counts = FaultCounts::default();
        plan.degrade_replies(&mut t, &mut counts);
        assert!(t.hops.iter().all(|h| h.is_responsive()));
        assert!(t.hops.iter().all(|h| !h.is_labelled()));
        assert_eq!(counts.php_silenced, 2);
    }

    #[test]
    fn truncation_keeps_only_the_top_entry() {
        let mut plan = FaultPlan::none(0);
        plan.truncate_ext = 1.0;
        let mut t = sample_trace(9);
        let mut counts = FaultCounts::default();
        plan.degrade_replies(&mut t, &mut counts);
        assert_eq!(counts.truncated_exts, 1, "only the depth-2 stack can truncate");
        assert!(t.hops.iter().all(|h| h.stack.depth() <= 1));
    }

    #[test]
    fn structural_faults_break_ttl_monotonicity() {
        let mut plan = FaultPlan::none(3);
        plan.duplicate_reply = 1.0;
        let mut t = sample_trace(9);
        let mut counts = FaultCounts::default();
        plan.degrade_structure(&mut t, &mut counts);
        assert_eq!(counts.duplicated, 4);
        assert_eq!(t.hops.len(), 8);
        let monotonic = t.hops.windows(2).all(|w| w[0].probe_ttl < w[1].probe_ttl);
        assert!(!monotonic, "duplicates must violate strict TTL order");
    }
}
