//! Byte-level corruption of encoded warts streams.

use crate::splitmix64;

/// The warts record magic, big-endian (`0x1205`), duplicated from the
/// `warts` crate so the corruptor can walk record framing without a
/// dependency edge (the format constant is stable by definition — it is
/// what scamper writes).
pub const WARTS_MAGIC_BE: [u8; 2] = [0x12, 0x05];

const DECIDE_SALT: u64 = 0xC0DE_D00D_0000_0001;
const KIND_SALT: u64 = 0xC0DE_D00D_0000_0002;

/// Tally of corruptions applied to a stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CorruptionCounts {
    /// Records with a bit flipped in their body.
    pub bit_flips: u64,
    /// Records whose body was cut short (the header still declares the
    /// full length, desynchronising the stream).
    pub truncated_bodies: u64,
    /// Records whose declared length was inflated past the actual body.
    pub bad_lengths: u64,
    /// Records whose magic was smashed.
    pub bad_magics: u64,
}

impl CorruptionCounts {
    /// Total records corrupted.
    pub fn total(&self) -> u64 {
        self.bit_flips + self.truncated_bodies + self.bad_lengths + self.bad_magics
    }
}

/// Corrupts an encoded warts stream: each record independently suffers,
/// with probability `rate`, one of a bit flip, a truncated body, a bad
/// declared length or a smashed magic. Decisions derive from
/// `(seed, record index)` only, so the same input corrupts identically
/// on every run.
///
/// The walk uses the *input*'s framing (assumed well-formed, as produced
/// by a warts writer); if framing breaks mid-input the remainder is
/// copied verbatim.
pub fn corrupt_warts_bytes(bytes: &[u8], seed: u64, rate: f64) -> (Vec<u8>, CorruptionCounts) {
    let mut out = Vec::with_capacity(bytes.len());
    let mut counts = CorruptionCounts::default();
    let mut pos = 0usize;
    let mut index = 0u64;
    while pos + 8 <= bytes.len() {
        if bytes[pos..pos + 2] != WARTS_MAGIC_BE {
            break;
        }
        let len = u32::from_be_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]) as usize;
        if pos + 8 + len > bytes.len() {
            break;
        }
        let header = &bytes[pos..pos + 8];
        let body = &bytes[pos + 8..pos + 8 + len];
        pos += 8 + len;

        let hit = rate > 0.0
            && (rate >= 1.0 || {
                let h = splitmix64(seed ^ DECIDE_SALT ^ splitmix64(index));
                ((h >> 11) as f64 / ((1u64 << 53) as f64)) < rate
            });
        if !hit {
            out.extend_from_slice(header);
            out.extend_from_slice(body);
            index += 1;
            continue;
        }

        let bits = splitmix64(seed ^ KIND_SALT ^ splitmix64(index));
        index += 1;
        match bits % 4 {
            0 if len > 0 => {
                // Bit flip inside the body: framing intact, decode fails.
                out.extend_from_slice(header);
                let mut mutated = body.to_vec();
                let bit = (bits >> 2) as usize % (len * 8);
                mutated[bit / 8] ^= 1 << (bit % 8);
                out.extend_from_slice(&mutated);
                counts.bit_flips += 1;
            }
            1 if len > 1 => {
                // Cut the body short of its declared length.
                let cut = 1 + (bits >> 2) as usize % (len - 1);
                out.extend_from_slice(header);
                out.extend_from_slice(&body[..len - cut]);
                counts.truncated_bodies += 1;
            }
            2 => {
                // Inflate the declared length past the actual body.
                let declared = (len as u32).saturating_add(1 + (bits >> 2) as u32 % 13);
                out.extend_from_slice(&header[..4]);
                out.extend_from_slice(&declared.to_be_bytes());
                out.extend_from_slice(body);
                counts.bad_lengths += 1;
            }
            _ => {
                // Smash the magic: the record boundary itself is lost.
                out.push(header[0] ^ 0xFF);
                out.extend_from_slice(&header[1..]);
                out.extend_from_slice(body);
                counts.bad_magics += 1;
            }
        }
    }
    out.extend_from_slice(&bytes[pos..]);
    (out, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal well-formed stream: `n` records with tiny bodies.
    fn sample_stream(n: usize) -> Vec<u8> {
        let mut bytes = Vec::new();
        for i in 0..n {
            bytes.extend_from_slice(&WARTS_MAGIC_BE);
            bytes.extend_from_slice(&(0x000Fu16).to_be_bytes()); // unsupported type
            let body = [i as u8; 6];
            bytes.extend_from_slice(&(body.len() as u32).to_be_bytes());
            bytes.extend_from_slice(&body);
        }
        bytes
    }

    #[test]
    fn zero_rate_is_identity() {
        let bytes = sample_stream(10);
        let (out, counts) = corrupt_warts_bytes(&bytes, 1, 0.0);
        assert_eq!(out, bytes);
        assert_eq!(counts.total(), 0);
    }

    #[test]
    fn corruption_is_deterministic() {
        let bytes = sample_stream(50);
        let (a, ca) = corrupt_warts_bytes(&bytes, 9, 0.2);
        let (b, cb) = corrupt_warts_bytes(&bytes, 9, 0.2);
        assert_eq!(a, b);
        assert_eq!(ca, cb);
        assert!(ca.total() > 0);
        let (c, _) = corrupt_warts_bytes(&bytes, 10, 0.2);
        assert_ne!(a, c, "different seeds corrupt differently");
    }

    #[test]
    fn full_rate_corrupts_every_record() {
        let bytes = sample_stream(40);
        let (out, counts) = corrupt_warts_bytes(&bytes, 3, 1.0);
        assert_eq!(counts.total(), 40);
        assert_ne!(out, bytes);
        // All four kinds fire across 40 records.
        assert!(counts.bit_flips > 0);
        assert!(counts.truncated_bodies > 0);
        assert!(counts.bad_lengths > 0);
        assert!(counts.bad_magics > 0);
    }

    #[test]
    fn malformed_input_is_copied_verbatim() {
        let garbage = vec![0xAB; 37];
        let (out, counts) = corrupt_warts_bytes(&garbage, 1, 1.0);
        assert_eq!(out, garbage);
        assert_eq!(counts.total(), 0);
    }
}
