//! IPv4 CIDR prefixes.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 prefix in CIDR form, e.g. `10.0.0.0/8`.
///
/// Construction normalises the address by zeroing the host bits, so two
/// prefixes covering the same range compare equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    addr: Ipv4Addr,
    len: u8,
}

/// Errors produced when parsing a [`Prefix`] from text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PrefixParseError {
    /// Missing `/` separator.
    MissingSlash,
    /// The address part is not a valid IPv4 address.
    BadAddress,
    /// The length part is not an integer in `0..=32`.
    BadLength,
}

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrefixParseError::MissingSlash => "missing '/' in prefix",
            PrefixParseError::BadAddress => "invalid IPv4 address in prefix",
            PrefixParseError::BadLength => "invalid prefix length (want 0..=32)",
        };
        f.write_str(s)
    }
}

impl std::error::Error for PrefixParseError {}

impl Prefix {
    /// Builds a prefix, zeroing host bits. `len` is clamped to 32.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        let len = len.min(32);
        let bits = u32::from(addr) & Self::netmask(len);
        Prefix { addr: Ipv4Addr::from(bits), len }
    }

    /// The all-addresses prefix `0.0.0.0/0`.
    pub const fn default_route() -> Self {
        Prefix { addr: Ipv4Addr::UNSPECIFIED, len: 0 }
    }

    /// The (normalised) network address.
    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// The prefix length in bits.
    // Clippy's len/is_empty convention targets containers; a CIDR
    // prefix length is not a size, so the lint does not apply.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True for the zero-length default route.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// The netmask corresponding to a prefix length.
    fn netmask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// Whether `ip` falls inside this prefix.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        (u32::from(ip) & Self::netmask(self.len)) == u32::from(self.addr)
    }

    /// Whether `other` is fully covered by this prefix.
    pub fn covers(&self, other: &Prefix) -> bool {
        other.len >= self.len && self.contains(other.addr)
    }

    /// The `i`-th bit of the network address, counting from the most
    /// significant (bit 0). Used by the trie walk.
    pub(crate) fn bit(&self, i: u8) -> bool {
        debug_assert!(i < 32);
        (u32::from(self.addr) >> (31 - i as u32)) & 1 == 1
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or(PrefixParseError::MissingSlash)?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| PrefixParseError::BadAddress)?;
        let len: u8 = len.parse().map_err(|_| PrefixParseError::BadLength)?;
        if len > 32 {
            return Err(PrefixParseError::BadLength);
        }
        Ok(Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        assert_eq!(p.to_string(), "10.0.0.0/8");
        assert_eq!(p.len(), 8);
    }

    #[test]
    fn parse_errors() {
        assert_eq!("10.0.0.0".parse::<Prefix>(), Err(PrefixParseError::MissingSlash));
        assert_eq!("10.0.0/8".parse::<Prefix>(), Err(PrefixParseError::BadAddress));
        assert_eq!("10.0.0.0/33".parse::<Prefix>(), Err(PrefixParseError::BadLength));
        assert_eq!("10.0.0.0/x".parse::<Prefix>(), Err(PrefixParseError::BadLength));
    }

    #[test]
    fn host_bits_are_normalised() {
        let a: Prefix = "10.1.2.3/8".parse().unwrap();
        let b: Prefix = "10.0.0.0/8".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn contains() {
        let p: Prefix = "192.168.4.0/22".parse().unwrap();
        assert!(p.contains("192.168.4.1".parse().unwrap()));
        assert!(p.contains("192.168.7.255".parse().unwrap()));
        assert!(!p.contains("192.168.8.0".parse().unwrap()));
    }

    #[test]
    fn default_route_contains_everything() {
        let p = Prefix::default_route();
        assert!(p.is_default());
        assert!(p.contains("255.255.255.255".parse().unwrap()));
        assert!(p.contains("0.0.0.0".parse().unwrap()));
    }

    #[test]
    fn covers() {
        let p8: Prefix = "10.0.0.0/8".parse().unwrap();
        let p16: Prefix = "10.1.0.0/16".parse().unwrap();
        assert!(p8.covers(&p16));
        assert!(!p16.covers(&p8));
        assert!(p8.covers(&p8));
    }

    #[test]
    fn bit_extraction() {
        let p: Prefix = "128.0.0.0/1".parse().unwrap();
        assert!(p.bit(0));
        let p: Prefix = "64.0.0.0/2".parse().unwrap();
        assert!(!p.bit(0));
        assert!(p.bit(1));
    }
}
