//! A plain-text RIB snapshot format.
//!
//! One routed prefix per line, `<prefix> <origin-asn>`, `#` comments and
//! blank lines ignored — the shape of a Routeviews table after the usual
//! `prefix → origin` reduction:
//!
//! ```text
//! # cycle 60, 2014-12-01
//! 10.0.0.0/8 65001
//! 10.1.0.0/16 65002
//! ```

use crate::prefix::{Prefix, PrefixParseError};
use crate::trie::Ip2AsTrie;
use lpr_core::lsp::Asn;
use std::fmt;

/// Errors produced while parsing a RIB snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RibError {
    /// A line did not split into `prefix asn`.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// The prefix field failed to parse.
    BadPrefix {
        /// 1-based line number.
        line: usize,
        /// Underlying prefix error.
        source: PrefixParseError,
    },
    /// The ASN field failed to parse.
    BadAsn {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for RibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RibError::BadLine { line } => write!(f, "line {line}: expected `prefix asn`"),
            RibError::BadPrefix { line, source } => write!(f, "line {line}: {source}"),
            RibError::BadAsn { line } => write!(f, "line {line}: invalid ASN"),
        }
    }
}

impl std::error::Error for RibError {}

/// Parses a RIB snapshot into a lookup trie.
pub fn parse_rib(text: &str) -> Result<Ip2AsTrie, RibError> {
    let mut trie = Ip2AsTrie::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut fields = content.split_whitespace();
        let (prefix, asn) = match (fields.next(), fields.next(), fields.next()) {
            (Some(p), Some(a), None) => (p, a),
            _ => return Err(RibError::BadLine { line }),
        };
        let prefix: Prefix =
            prefix.parse().map_err(|source| RibError::BadPrefix { line, source })?;
        let asn: u32 = asn.parse().map_err(|_| RibError::BadAsn { line })?;
        trie.insert(prefix, Asn(asn));
    }
    Ok(trie)
}

/// Serialises a trie back into the RIB snapshot format, prefixes in
/// lexicographic order (stable for diffing).
pub fn to_rib_string(trie: &Ip2AsTrie) -> String {
    let mut out = String::new();
    for (prefix, asn) in trie.iter() {
        out.push_str(&format!("{} {}\n", prefix, asn.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn parse_basic_rib() {
        let trie = parse_rib("10.0.0.0/8 65001\n192.0.2.0/24 64500\n").unwrap();
        assert_eq!(trie.prefix_count(), 2);
        assert_eq!(trie.lookup(Ipv4Addr::new(10, 1, 2, 3)), Some(Asn(65001)));
    }

    #[test]
    fn comments_and_blank_lines() {
        let rib = "# header\n\n10.0.0.0/8 1 # trailing comment\n   \n";
        let trie = parse_rib(rib).unwrap();
        assert_eq!(trie.prefix_count(), 1);
    }

    #[test]
    fn error_positions() {
        assert_eq!(parse_rib("nonsense\n").unwrap_err(), RibError::BadLine { line: 1 });
        assert_eq!(
            parse_rib("10.0.0.0/8 1\nbad/8 2\n").unwrap_err(),
            RibError::BadPrefix { line: 2, source: PrefixParseError::BadAddress }
        );
        assert_eq!(parse_rib("10.0.0.0/8 x\n").unwrap_err(), RibError::BadAsn { line: 1 });
        assert_eq!(
            parse_rib("10.0.0.0/8 1 junk\n").unwrap_err(),
            RibError::BadLine { line: 1 }
        );
    }

    #[test]
    fn roundtrip() {
        let rib = "10.0.0.0/8 1\n10.128.0.0/9 2\n192.0.2.0/24 3\n";
        let trie = parse_rib(rib).unwrap();
        assert_eq!(to_rib_string(&trie), rib);
    }
}
