//! A binary trie for longest-prefix-match IP-to-AS lookups.
//!
//! Nodes live in a flat arena (`Vec`), children are indices: no
//! recursion, no unsafe, cache-friendly. Insertion walks at most 32
//! levels; lookup walks until the trie runs out of matching branches and
//! returns the deepest AS seen on the way.

use crate::prefix::Prefix;
use lpr_core::filter::AsMapper;
use lpr_core::lsp::Asn;
use std::net::Ipv4Addr;

const NO_NODE: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node {
    children: [u32; 2],
    /// Origin AS when a prefix terminates here.
    asn: Option<Asn>,
}

impl Node {
    fn new() -> Self {
        Node { children: [NO_NODE; 2], asn: None }
    }
}

/// A longest-prefix-match table mapping IPv4 prefixes to origin ASes.
#[derive(Clone, Debug)]
pub struct Ip2AsTrie {
    nodes: Vec<Node>,
    prefixes: usize,
}

impl Default for Ip2AsTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl Ip2AsTrie {
    /// An empty table.
    pub fn new() -> Self {
        Ip2AsTrie { nodes: vec![Node::new()], prefixes: 0 }
    }

    /// Number of routed prefixes inserted.
    pub fn prefix_count(&self) -> usize {
        self.prefixes
    }

    /// Inserts (or replaces) the origin AS of a prefix. Returns the
    /// previous origin when the exact prefix was already present.
    pub fn insert(&mut self, prefix: Prefix, asn: Asn) -> Option<Asn> {
        let mut node = 0usize;
        for i in 0..prefix.len() {
            let bit = prefix.bit(i) as usize;
            let next = self.nodes[node].children[bit];
            let next = if next == NO_NODE {
                let idx = self.nodes.len() as u32;
                self.nodes.push(Node::new());
                self.nodes[node].children[bit] = idx;
                idx
            } else {
                next
            };
            node = next as usize;
        }
        let prev = self.nodes[node].asn.replace(asn);
        if prev.is_none() {
            self.prefixes += 1;
        }
        prev
    }

    /// Longest-prefix-match lookup: the origin AS of the most specific
    /// prefix covering `ip`, if any.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<Asn> {
        let bits = u32::from(ip);
        let mut node = 0usize;
        let mut best = self.nodes[0].asn;
        for i in 0..32u32 {
            let bit = ((bits >> (31 - i)) & 1) as usize;
            let next = self.nodes[node].children[bit];
            if next == NO_NODE {
                break;
            }
            node = next as usize;
            if let Some(asn) = self.nodes[node].asn {
                best = Some(asn);
            }
        }
        best
    }

    /// The exact origin recorded for `prefix`, ignoring covering
    /// prefixes (useful when diffing RIB snapshots).
    pub fn get_exact(&self, prefix: &Prefix) -> Option<Asn> {
        let mut node = 0usize;
        for i in 0..prefix.len() {
            let bit = prefix.bit(i) as usize;
            let next = self.nodes[node].children[bit];
            if next == NO_NODE {
                return None;
            }
            node = next as usize;
        }
        self.nodes[node].asn
    }

    /// Iterates over every `(prefix, asn)` pair in the table, in
    /// lexicographic prefix order.
    pub fn iter(&self) -> Vec<(Prefix, Asn)> {
        let mut out = Vec::with_capacity(self.prefixes);
        // Iterative DFS carrying (node, accumulated bits, depth).
        let mut stack: Vec<(usize, u32, u8)> = vec![(0, 0, 0)];
        while let Some((node, bits, depth)) = stack.pop() {
            if let Some(asn) = self.nodes[node].asn {
                out.push((Prefix::new(Ipv4Addr::from(bits), depth), asn));
            }
            for bit in [1usize, 0usize] {
                let child = self.nodes[node].children[bit];
                if child != NO_NODE {
                    debug_assert!(depth < 32);
                    let child_bits = bits | ((bit as u32) << (31 - depth as u32));
                    stack.push((child as usize, child_bits, depth + 1));
                }
            }
        }
        out.sort();
        out
    }
}

impl AsMapper for Ip2AsTrie {
    fn asn_of(&self, addr: Ipv4Addr) -> Option<Asn> {
        self.lookup(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn empty_trie_maps_nothing() {
        let t = Ip2AsTrie::new();
        assert_eq!(t.lookup(ip("8.8.8.8")), None);
        assert_eq!(t.prefix_count(), 0);
    }

    #[test]
    fn longest_match_wins() {
        let mut t = Ip2AsTrie::new();
        t.insert(p("10.0.0.0/8"), Asn(1));
        t.insert(p("10.1.0.0/16"), Asn(2));
        t.insert(p("10.1.2.0/24"), Asn(3));
        assert_eq!(t.lookup(ip("10.9.9.9")), Some(Asn(1)));
        assert_eq!(t.lookup(ip("10.1.9.9")), Some(Asn(2)));
        assert_eq!(t.lookup(ip("10.1.2.9")), Some(Asn(3)));
        assert_eq!(t.lookup(ip("11.0.0.1")), None);
    }

    #[test]
    fn replacing_a_prefix_returns_previous() {
        let mut t = Ip2AsTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), Asn(1)), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), Asn(2)), Some(Asn(1)));
        assert_eq!(t.prefix_count(), 1);
        assert_eq!(t.lookup(ip("10.0.0.1")), Some(Asn(2)));
    }

    #[test]
    fn default_route() {
        let mut t = Ip2AsTrie::new();
        t.insert(Prefix::default_route(), Asn(7));
        t.insert(p("10.0.0.0/8"), Asn(1));
        assert_eq!(t.lookup(ip("8.8.8.8")), Some(Asn(7)));
        assert_eq!(t.lookup(ip("10.0.0.1")), Some(Asn(1)));
    }

    #[test]
    fn host_route() {
        let mut t = Ip2AsTrie::new();
        t.insert(p("192.0.2.1/32"), Asn(9));
        assert_eq!(t.lookup(ip("192.0.2.1")), Some(Asn(9)));
        assert_eq!(t.lookup(ip("192.0.2.2")), None);
    }

    #[test]
    fn get_exact_ignores_covering_prefixes() {
        let mut t = Ip2AsTrie::new();
        t.insert(p("10.0.0.0/8"), Asn(1));
        assert_eq!(t.get_exact(&p("10.0.0.0/8")), Some(Asn(1)));
        assert_eq!(t.get_exact(&p("10.1.0.0/16")), None);
    }

    #[test]
    fn iter_returns_all_prefixes() {
        let mut t = Ip2AsTrie::new();
        t.insert(p("10.0.0.0/8"), Asn(1));
        t.insert(p("10.128.0.0/9"), Asn(2));
        t.insert(p("192.0.2.0/24"), Asn(3));
        let all = t.iter();
        assert_eq!(
            all,
            vec![
                (p("10.0.0.0/8"), Asn(1)),
                (p("10.128.0.0/9"), Asn(2)),
                (p("192.0.2.0/24"), Asn(3)),
            ]
        );
    }

    #[test]
    fn as_mapper_impl() {
        let mut t = Ip2AsTrie::new();
        t.insert(p("10.0.0.0/8"), Asn(1));
        let mapper: &dyn AsMapper = &t;
        assert_eq!(mapper.asn_of(ip("10.0.0.1")), Some(Asn(1)));
    }
}
