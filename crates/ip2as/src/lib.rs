//! # ip2as — IP-to-AS mapping by longest-prefix match
//!
//! The LPR evaluation maps every traceroute address to its origin AS
//! using Routeviews BGP snapshots collected the same day as the cycle
//! (paper §4.1). This crate provides the equivalent machinery:
//!
//! * [`Prefix`] — an IPv4 CIDR prefix;
//! * [`Ip2AsTrie`] — a binary trie supporting longest-prefix-match
//!   lookups, loadable from / dumpable to a plain `prefix asn` RIB
//!   snapshot format;
//! * an implementation of [`lpr_core::filter::AsMapper`], so a trie can
//!   be handed directly to the LPR pipeline.
//!
//! ```
//! use ip2as::{Ip2AsTrie, Prefix};
//! use lpr_core::prelude::*;
//!
//! let mut trie = Ip2AsTrie::new();
//! trie.insert("10.0.0.0/8".parse().unwrap(), Asn(65001));
//! trie.insert("10.1.0.0/16".parse().unwrap(), Asn(65002));
//!
//! let lookup = |s: &str| trie.lookup(s.parse().unwrap());
//! assert_eq!(lookup("10.2.3.4"), Some(Asn(65001)));
//! assert_eq!(lookup("10.1.3.4"), Some(Asn(65002))); // longest match wins
//! assert_eq!(lookup("192.0.2.1"), None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prefix;
pub mod rib;
pub mod trie;

pub use prefix::{Prefix, PrefixParseError};
pub use rib::{parse_rib, to_rib_string, RibError};
pub use trie::Ip2AsTrie;
