//! Property-based tests: the trie must agree with a naive
//! linear-scan longest-prefix-match oracle on arbitrary inputs.

use ip2as::{parse_rib, to_rib_string, Ip2AsTrie, Prefix};
use lpr_core::lsp::Asn;
use proptest::prelude::*;
use std::collections::HashMap;
use std::net::Ipv4Addr;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix::new(Ipv4Addr::from(bits), len))
}

/// Naive longest-prefix match over a prefix list (later entries replace
/// earlier ones for the same prefix, like trie insertion does).
fn oracle(entries: &[(Prefix, Asn)], ip: Ipv4Addr) -> Option<Asn> {
    let mut dedup: HashMap<Prefix, Asn> = HashMap::new();
    for (p, a) in entries {
        dedup.insert(*p, *a);
    }
    dedup
        .into_iter()
        .filter(|(p, _)| p.contains(ip))
        .max_by_key(|(p, _)| p.len())
        .map(|(_, a)| a)
}

proptest! {
    #[test]
    fn trie_matches_linear_scan(
        entries in proptest::collection::vec((arb_prefix(), 1u32..100_000), 0..64),
        probes in proptest::collection::vec(any::<u32>(), 1..32),
    ) {
        let mut trie = Ip2AsTrie::new();
        let entries: Vec<(Prefix, Asn)> =
            entries.into_iter().map(|(p, a)| (p, Asn(a))).collect();
        for (p, a) in &entries {
            trie.insert(*p, *a);
        }
        for probe in probes {
            let ip = Ipv4Addr::from(probe);
            prop_assert_eq!(trie.lookup(ip), oracle(&entries, ip));
        }
    }

    #[test]
    fn rib_roundtrip(
        entries in proptest::collection::vec((arb_prefix(), 1u32..100_000), 0..64),
    ) {
        let mut trie = Ip2AsTrie::new();
        for (p, a) in &entries {
            trie.insert(*p, Asn(*a));
        }
        let text = to_rib_string(&trie);
        let reparsed = parse_rib(&text).unwrap();
        prop_assert_eq!(reparsed.iter(), trie.iter());
    }

    #[test]
    fn prefix_display_parse_roundtrip(p in arb_prefix()) {
        let text = p.to_string();
        let back: Prefix = text.parse().unwrap();
        prop_assert_eq!(back, p);
    }
}
