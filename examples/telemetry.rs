//! Telemetry: run the LPR pipeline under `lpr-obs` instrumentation —
//! probe counters, per-filter stage timings that reconcile with the
//! Table 1 funnel, the machine-readable JSON document `lpr classify
//! --metrics` writes, and the hierarchical span journal behind
//! `--trace-out` (here rendered as folded stacks).
//!
//! ```sh
//! cargo run -p lpr-examples --bin telemetry
//! ```

use lpr_core::prelude::*;
use netsim::{
    AsSpec, Internet, MplsConfig, Peering, ProbeOptions, Prober, TePathMode, Topology,
    TopologyParams, Vendor,
};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

fn main() {
    // A transit ISP between a monitor stub and two customer stubs —
    // the same shape as `lpr demo`.
    let specs = vec![
        AsSpec::transit(
            65000,
            "demo-transit",
            Vendor::Juniper,
            TopologyParams {
                core_routers: 6,
                border_routers: 3,
                ecmp_diamonds: 1,
                parallel_bundles: 1,
                ..TopologyParams::default()
            },
        ),
        AsSpec::stub(64600, "monitors", 0, 2),
        AsSpec::stub(64700, "customer-a", 3, 0),
        AsSpec::stub(64701, "customer-b", 3, 0),
    ];
    let peerings = vec![
        Peering::new(Asn(64600), Asn(65000)).at_b(0),
        Peering::new(Asn(65000), Asn(64700)).at_a(1),
        Peering::new(Asn(65000), Asn(64701)).at_a(1),
    ];
    let topo = Topology::build_with_peerings(&specs, &peerings);
    let rib = topo.rib();
    let mut configs = BTreeMap::new();
    configs.insert(Asn(65000), MplsConfig::with_te(0.5, 2, TePathMode::SamePath));
    let net = Internet::new(topo, &configs);

    // One Recorder observes everything: the prober tallies `probe.*`
    // counters and the RFC 4950 stack-depth histogram while the
    // pipeline records one timed stage per filter. The attached Tracer
    // additionally journals hierarchical spans — everything recorded
    // below the root span nests under `run:telemetry-example`.
    let tracer = lpr_obs::Tracer::new(lpr_obs::Level::Debug);
    let recorder = lpr_obs::Recorder::new("telemetry example").with_tracer(tracer.clone());
    let run_span = tracer.span("run:telemetry-example");
    tracer.set_default_parent(run_span.context());

    let prober = Prober::new(&net, ProbeOptions::default()).with_recorder(&recorder);
    let vps: Vec<Ipv4Addr> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
    let dsts = net.topo.destinations(1);
    let traces = {
        let campaign_span = tracer.span("campaign");
        let traces = prober.campaign(&vps, &dsts);
        campaign_span.event(
            lpr_obs::Level::Info,
            "campaign-complete",
            vec![("traces".to_string(), lpr_obs::FieldValue::U64(traces.len() as u64))],
        );
        traces
    };

    let keys = Pipeline::snapshot_keys(&traces);
    let pipeline = Pipeline::new(FilterConfig { persistence_window: 1, ..Default::default() });
    let out = pipeline.run_recorded(&traces, &rib, &[keys], Some(&recorder));

    // Close the root span before snapshotting so every span has an end.
    tracer.set_default_parent(lpr_obs::SpanContext::ROOT);
    drop(run_span);

    let telemetry = recorder.finish();
    println!("=== stages (counts chain through the Table 1 funnel) ===");
    for s in &telemetry.stages {
        println!(
            "{:<18} {:>6} -> {:<6} {:>8} us",
            s.name, s.input, s.output, s.wall_us,
        );
    }
    for stage in FilterStage::ALL {
        let s = telemetry.stage(stage.name()).expect("every filter is a stage");
        assert_eq!(s.output, out.report.remaining[&stage] as u64);
    }

    println!("\n=== counters ===");
    for (name, value) in &telemetry.counters {
        println!("{name:<28} {value}");
    }
    let depths = &telemetry.histograms["probe.stack_depth"];
    println!("\nquoted label-stack depths: {depths:?}");

    // The span journal behind `lpr classify --trace-out`: folded-stack
    // lines ready for flamegraph.pl; `lpr_obs::export::chrome_trace`
    // renders the same snapshot for chrome://tracing / Perfetto.
    let snapshot = tracer.snapshot();
    let events = snapshot
        .events
        .iter()
        .filter(|e| matches!(e, lpr_obs::TraceEvent::Event { .. }))
        .count();
    println!("\n=== span journal ({events} events; folded stacks, self-time in us) ===");
    print!("{}", lpr_obs::export::folded_stacks(&snapshot));

    // The exact document `lpr classify --metrics out.json` writes; it
    // round-trips losslessly.
    let json = telemetry.to_json();
    let back = lpr_obs::RunTelemetry::from_json(&json).expect("round-trip");
    assert_eq!(back, telemetry);
    println!("\n=== telemetry JSON ===\n{json}");
}
