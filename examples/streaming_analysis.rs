//! Bounded-memory analysis of a large warts file: stream records with
//! `WartsStreamReader`, filter trace by trace with `CycleAccumulator`,
//! classify at the end. This is the shape of a real CAIDA-scale run
//! (the paper's cycles hold ~14 M LSPs — far too many to buffer as raw
//! traces).
//!
//! ```sh
//! cargo run --release -p lpr-examples --bin streaming_analysis
//! ```

use lpr_core::prelude::*;
use lpr_core::stream::CycleAccumulator;
use netsim::{
    AsSpec, Internet, MplsConfig, Peering, ProbeOptions, Prober, TePathMode, Topology,
    TopologyParams, Vendor,
};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::Ipv4Addr;

fn main() {
    // --- Produce a warts file on disk (stand-in for an Ark dump). ----
    let specs = vec![
        AsSpec::transit(
            65000,
            "isp",
            Vendor::Juniper,
            TopologyParams {
                core_routers: 6,
                border_routers: 3,
                ecmp_diamonds: 1,
                parallel_bundles: 1,
                ..TopologyParams::default()
            },
        ),
        AsSpec::stub(64600, "monitors", 0, 2),
        AsSpec::stub(64700, "cust-a", 4, 0),
        AsSpec::stub(64701, "cust-b", 4, 0),
    ];
    let peerings = vec![
        Peering::new(Asn(64600), Asn(65000)).at_b(0),
        Peering::new(Asn(65000), Asn(64700)).at_a(1),
        Peering::new(Asn(65000), Asn(64701)).at_a(1),
    ];
    let topo = Topology::build_with_peerings(&specs, &peerings);
    let rib = topo.rib();
    let mut configs = BTreeMap::new();
    configs.insert(Asn(65000), MplsConfig::with_te(0.5, 2, TePathMode::SamePath));
    let net = Internet::new(topo, &configs);
    let prober = Prober::new(&net, ProbeOptions::default());
    let vps: Vec<Ipv4Addr> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
    let dsts = net.topo.destinations(1);

    let mut writer = warts::WartsWriter::new();
    let list = writer.list(1, "stream-demo");
    let cycle = writer.cycle_start(list, 1, 0);
    let mut n = 0usize;
    for &vp in &vps {
        for &dst in &dsts {
            let t = prober.trace(vp, dst);
            writer.trace(&warts::trace_to_record(&t, list, cycle)).unwrap();
            n += 1;
        }
    }
    writer.cycle_stop(cycle, 1);
    let path = std::env::temp_dir().join("lpr-streaming-demo.warts");
    warts::write_path(&path, writer).expect("write warts file");
    println!(
        "wrote {n} traces to {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path).unwrap().len()
    );

    // --- Analyse it without ever holding the traces in memory. -------
    let file = std::fs::File::open(&path).expect("open warts file");
    let mut reader = warts::WartsStreamReader::new(BufReader::new(file));
    let mut acc = CycleAccumulator::new(&rib);
    let mut seen = 0usize;
    while let Some(record) = reader.next_record().expect("stream records") {
        if let warts::Record::Trace(t) = record {
            if let Some(trace) = warts::trace_to_core(&t).expect("decode") {
                acc.push_trace(&trace);
                seen += 1;
            }
        }
    }
    println!("streamed {seen} traces; retained only {} filtered LSPs in memory", acc.retained());

    let out = acc.finish(&Pipeline::default(), &[]);
    let c = out.class_counts();
    println!(
        "classified {} IOTPs: {} Mono-LSP | {} Multi-FEC | {} Mono-FEC | {} unclassified",
        c.total(),
        c.mono_lsp,
        c.multi_fec,
        c.mono_fec(),
        c.unclassified
    );
    std::fs::remove_file(&path).ok();
}
