//! Quickstart: build a small MPLS transit network, traceroute through
//! it, and let LPR tell you how the operator uses MPLS.
//!
//! ```sh
//! cargo run -p lpr-examples --bin quickstart
//! ```

use lpr_core::prelude::*;
use netsim::{
    AsSpec, Internet, MplsConfig, Peering, ProbeOptions, Prober, TePathMode, Topology,
    TopologyParams, Vendor,
};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

fn main() {
    // 1. A transit ISP (AS 65000) between a monitor stub and two
    //    customer stubs sharing one egress border.
    let specs = vec![
        AsSpec::transit(
            65000,
            "demo-transit",
            Vendor::Juniper,
            TopologyParams {
                core_routers: 6,
                border_routers: 3,
                ecmp_diamonds: 1,
                parallel_bundles: 1,
                ..TopologyParams::default()
            },
        ),
        AsSpec::stub(64600, "monitors", 0, 2),
        AsSpec::stub(64700, "customer-a", 3, 0),
        AsSpec::stub(64701, "customer-b", 3, 0),
    ];
    let peerings = vec![
        Peering::new(Asn(64600), Asn(65000)).at_b(0),
        Peering::new(Asn(65000), Asn(64700)).at_a(1),
        Peering::new(Asn(65000), Asn(64701)).at_a(1),
    ];
    let topo = Topology::build_with_peerings(&specs, &peerings);

    // 2. The operator's MPLS policy: LDP everywhere, plus RSVP-TE
    //    (2 LSPs) on half of the LER pairs.
    let mut configs = BTreeMap::new();
    configs.insert(Asn(65000), MplsConfig::with_te(0.5, 2, TePathMode::SamePath));
    let net = Internet::new(topo, &configs);

    // 3. Probe: every monitor towards every destination, Paris style.
    let prober = Prober::new(&net, ProbeOptions::default());
    let vps: Vec<Ipv4Addr> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
    let dsts = net.topo.destinations(1);
    let traces = prober.campaign(&vps, &dsts);
    println!("probed {} traces from {} monitors to {} destinations", traces.len(), vps.len(), dsts.len());

    // Show one trace with its RFC 4950 label stacks.
    let sample = traces.iter().find(|t| t.has_mpls()).expect("an MPLS trace");
    println!("\nsample trace {} -> {}:", sample.src, sample.dst);
    for hop in &sample.hops {
        match hop.addr {
            Some(a) if hop.is_labelled() => println!("  {:>2}  {a}  MPLS {:?}", hop.probe_ttl, hop.stack),
            Some(a) => println!("  {:>2}  {a}", hop.probe_ttl),
            None => println!("  {:>2}  *", hop.probe_ttl),
        }
    }

    // 4. LPR: filter and classify.
    let rib = net.topo.rib();
    let keys = Pipeline::snapshot_keys(&traces);
    let out = Pipeline::default().run(&traces, &rib, &[keys.clone(), keys]);

    println!("\nfilter survival (of {} extracted LSPs):", out.report.input);
    for stage in FilterStage::ALL {
        println!(
            "  {:<18} {:.3}",
            stage.name(),
            out.report.proportion_after(stage)
        );
    }

    println!("\nclassified IOTPs:");
    for (iotp, cls) in &out.iotps {
        let m = lpr_core::metrics::IotpMetrics::of(iotp);
        println!(
            "  {} <{} ; {}>  {}  (width {}, length {}, {})",
            iotp.key.asn,
            iotp.key.ingress,
            iotp.key.egress,
            cls.class,
            m.width,
            m.length,
            if m.is_balanced() { "balanced" } else { "unbalanced" },
        );
    }
    let c = out.class_counts();
    println!(
        "\nsummary: {} Mono-LSP, {} Multi-FEC (RSVP-TE), {} ECMP Mono-FEC ({} parallel links / {} disjoint), {} unclassified",
        c.mono_lsp, c.multi_fec, c.mono_fec(), c.mono_fec_parallel, c.mono_fec_disjoint, c.unclassified
    );
}
