//! Full warts pipeline: what a consumer of real CAIDA Archipelago data
//! does — except the warts bytes come from the simulator.
//!
//! simulate → serialise to warts → (bytes on disk) → parse warts →
//! extract tunnels → LPR.
//!
//! ```sh
//! cargo run -p lpr-examples --bin warts_pipeline [output.warts]
//! ```

use lpr_core::prelude::*;
use netsim::{
    AsSpec, Internet, MplsConfig, Peering, ProbeOptions, Prober, TePathMode, Topology,
    TopologyParams, Vendor,
};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

fn main() {
    // --- Measurement side: an Ark-like monitor dumps a warts file. ---
    let specs = vec![
        AsSpec::transit(
            65000,
            "isp",
            Vendor::Cisco,
            TopologyParams {
                core_routers: 6,
                border_routers: 3,
                ecmp_diamonds: 1,
                ..TopologyParams::default()
            },
        ),
        AsSpec::stub(64600, "monitors", 0, 1),
        AsSpec::stub(64700, "cust-a", 3, 0),
        AsSpec::stub(64701, "cust-b", 3, 0),
    ];
    let peerings = vec![
        Peering::new(Asn(64600), Asn(65000)).at_b(0),
        Peering::new(Asn(65000), Asn(64700)).at_a(1),
        Peering::new(Asn(65000), Asn(64701)).at_a(1),
    ];
    let topo = Topology::build_with_peerings(&specs, &peerings);
    let rib_text = ip2as::to_rib_string(&topo.rib());

    let mut configs = BTreeMap::new();
    configs.insert(Asn(65000), MplsConfig::with_te(0.4, 2, TePathMode::SamePath));
    let net = Internet::new(topo, &configs);

    let prober = Prober::new(&net, ProbeOptions::default());
    let vps: Vec<Ipv4Addr> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
    let dsts = net.topo.destinations(1);
    let traces = prober.campaign(&vps, &dsts);

    let mut writer = warts::WartsWriter::new();
    let list = writer.list(1, "team-1");
    let cycle = writer.cycle_start(list, 1, 1_417_392_000);
    for t in &traces {
        writer.trace(&warts::trace_to_record(t, list, cycle)).expect("serialise trace");
    }
    writer.cycle_stop(cycle, 1_417_478_400);
    let bytes = writer.into_bytes();
    println!(
        "wrote {} traces into {} bytes of warts ({} bytes/trace)",
        traces.len(),
        bytes.len(),
        bytes.len() / traces.len().max(1)
    );

    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &bytes).expect("write warts file");
        println!("saved to {path}");
    }

    // --- Analysis side: parse the bytes back and run LPR. ------------
    let records = warts::WartsReader::new(&bytes).traces().expect("parse warts");
    let parsed: Vec<Trace> = records
        .iter()
        .filter_map(|r| warts::trace_to_core(r).expect("decode ICMP extensions"))
        .collect();
    assert_eq!(parsed, traces, "lossless round-trip");
    println!("parsed {} trace records back, bit-identical to the originals", parsed.len());

    let rib = ip2as::parse_rib(&rib_text).expect("parse RIB snapshot");
    let keys = Pipeline::snapshot_keys(&parsed);
    let out = Pipeline::default().run(&parsed, &rib, &[keys]);

    let c = out.class_counts();
    println!(
        "LPR on the reparsed data: {} IOTPs — {} Mono-LSP, {} Multi-FEC, {} Mono-FEC, {} unclassified",
        c.total(),
        c.mono_lsp,
        c.multi_fec,
        c.mono_fec(),
        c.unclassified
    );
}
