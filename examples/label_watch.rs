//! Label watch: the Fig. 17 experiment as a library user would run it.
//!
//! Monitors one RSVP-TE tunnel at high frequency, watches the labels
//! climb through the vendor's dynamic range at every re-optimisation,
//! and fingerprints the platform from the observed values.
//!
//! ```sh
//! cargo run --release -p lpr-examples --bin label_watch [minutes]
//! ```

use ark_dataset::dynamics::{run, DynamicsOptions};
use ark_dataset::standard_world;
use lpr_core::fingerprint::{InferredVendor, VendorEvidence};
use lpr_core::label::Label;

fn main() {
    let minutes: u32 = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(240);
    let world = standard_world();
    let opts = DynamicsOptions { minutes, sample_every: 10, ..DynamicsOptions::default() };
    println!(
        "watching one Vodafone TE tunnel for {minutes} minutes (sample every {} min, \
         re-optimisation every {} min)…\n",
        opts.sample_every, opts.reopt_every
    );
    let samples = run(&world, &opts);
    assert!(!samples.is_empty(), "no TE flow found in the world");

    // ASCII strip chart: one column per LSR, scaled into the Juniper
    // dynamic range.
    let lsrs: Vec<_> = samples
        .iter()
        .find(|s| !s.hops.is_empty())
        .map(|s| s.hops.iter().map(|(a, _)| *a).collect::<Vec<_>>())
        .unwrap_or_default();
    let (lo, hi) = (299_776f64, 800_000f64);
    println!("{:>7}  {}", "minute", lsrs.iter().map(|a| format!("{a:<16}")).collect::<String>());
    let mut evidence = VendorEvidence::default();
    for s in &samples {
        let mut row = format!("{:>7}", s.minute);
        for lsr in &lsrs {
            match s.hops.iter().find(|(a, _)| a == lsr) {
                Some((_, label)) => {
                    evidence.add(Label::new(*label));
                    let pos = (((*label as f64 - lo) / (hi - lo)) * 12.0) as usize;
                    let mut bar = vec![b'.'; 13];
                    bar[pos.min(12)] = b'#';
                    row.push_str(&format!("  {} ", String::from_utf8(bar).unwrap()));
                }
                None => row.push_str(&format!("  {:<13} ", "(no label)")),
            }
        }
        println!("{row}");
    }

    println!("\nlabel evidence: {evidence:?}");
    let verdict = evidence.verdict();
    println!("inferred platform: {verdict:?}");
    assert_eq!(verdict, InferredVendor::JuniperLike);
    println!(
        "\nThe '#' marks drift rightwards after every re-optimisation and snap back when the\n\
         router's dynamic range wraps — the Fig. 17 sawtooth. The range itself (299 776+)\n\
         betrays a Juniper-like platform, which is how the paper attributes the behaviour."
    );
}
