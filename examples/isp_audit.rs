//! ISP audit: follow one transit ISP's MPLS usage across a multi-year
//! campaign — the Vodafone story of Fig. 10, as a downstream user of
//! the library would run it.
//!
//! ```sh
//! cargo run --release -p lpr-examples --bin isp_audit [cycles]
//! ```

use ark_dataset::campaign::{analyze_cycle, generate_cycle, CampaignOptions};
use ark_dataset::{standard_world, VOD};

fn bar(frac: f64, width: usize) -> String {
    let n = (frac * width as f64).round() as usize;
    let mut s = String::new();
    for i in 0..width {
        s.push(if i < n { '#' } else { '.' });
    }
    s
}

fn main() {
    let cycles: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let world = standard_world();
    let opts = CampaignOptions::default();

    println!("auditing {VOD} (Vodafone) over {cycles} sampled cycles of the 60-cycle campaign\n");
    println!(
        "{:>5}  {:>5}  {:<22} {:<22} {:>8}",
        "cycle", "iotps", "Mono-LSP", "Multi-FEC", "dynamic"
    );

    // Sample the 60 cycles evenly.
    let step = (ark_dataset::CYCLES / cycles).max(1);
    for cycle in (1..=ark_dataset::CYCLES).step_by(step) {
        let data = generate_cycle(&world, cycle, &opts);
        let analysis = analyze_cycle(&world, &data, 2);
        let counts = analysis.output.class_counts_for(VOD);
        let f = counts.fractions();
        let dynamic = analysis.output.dynamic_ases.contains(&VOD);
        println!(
            "{:>5}  {:>5}  {} {:>4.0}%  {} {:>4.0}%  {:>8}",
            cycle,
            counts.total(),
            bar(f[0], 14),
            f[0] * 100.0,
            bar(f[1], 14),
            f[1] * 100.0,
            if dynamic { "yes" } else { "no" },
        );
    }

    println!(
        "\nReading: the Multi-FEC share (RSVP-TE with several LSPs per LER pair) grows at the"
    );
    println!(
        "expense of Mono-LSP (TE without path diversity), and the AS is flagged dynamic every"
    );
    println!(
        "cycle because its ingress routers re-optimise LSPs between snapshots — both exactly"
    );
    println!("the behaviours the paper reports for AS1273 (§4.4–4.5, Fig. 10).");
}
