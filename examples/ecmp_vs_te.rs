//! ECMP vs TE: the core LPR distinction, on one diamond topology.
//!
//! The same physical network is run three times with different MPLS
//! policies; the traces look superficially similar (labelled hops
//! between the same LERs), yet LPR separates them by label pattern:
//!
//! * pure LDP over ECMP diamonds      → ECMP Mono-FEC (routers disjoint)
//! * pure LDP over parallel links     → ECMP Mono-FEC (parallel links)
//! * RSVP-TE, several LSPs, same path → Multi-FEC
//!
//! ```sh
//! cargo run -p lpr-examples --bin ecmp_vs_te
//! ```

use lpr_core::prelude::*;
use netsim::{
    AsSpec, Internet, MplsConfig, Peering, ProbeOptions, Prober, TePathMode, Topology,
    TopologyParams, Vendor,
};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

fn build(params: TopologyParams, cfg: MplsConfig) -> Internet {
    let specs = vec![
        AsSpec::transit(65000, "isp", Vendor::Juniper, params),
        AsSpec::stub(64600, "monitors", 0, 2),
        AsSpec::stub(64700, "cust-a", 4, 0),
        AsSpec::stub(64701, "cust-b", 4, 0),
    ];
    let peerings = vec![
        Peering::new(Asn(64600), Asn(65000)).at_b(0),
        Peering::new(Asn(65000), Asn(64700)).at_a(1),
        Peering::new(Asn(65000), Asn(64701)).at_a(1),
    ];
    let topo = Topology::build_with_peerings(&specs, &peerings);
    let mut configs = BTreeMap::new();
    configs.insert(Asn(65000), cfg);
    Internet::new(topo, &configs)
}

fn classify(net: &Internet) -> lpr_core::pipeline::ClassCounts {
    let prober = Prober::new(net, ProbeOptions::default());
    let vps: Vec<Ipv4Addr> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
    let dsts = net.topo.destinations(1);
    let traces = prober.campaign(&vps, &dsts);
    let rib = net.topo.rib();
    let keys = Pipeline::snapshot_keys(&traces);
    Pipeline::default().run(&traces, &rib, &[keys]).class_counts()
}

fn show(name: &str, c: &lpr_core::pipeline::ClassCounts) {
    println!(
        "{name:<28} mono_lsp={} multi_fec={} mono_fec_parallel={} mono_fec_disjoint={} unclassified={}",
        c.mono_lsp, c.multi_fec, c.mono_fec_parallel, c.mono_fec_disjoint, c.unclassified
    );
}

fn main() {
    println!("Three operators, one question: where does their path diversity come from?\n");

    // Scenario 1: IGP ECMP over disjoint routers, labels from LDP.
    let diamonds = TopologyParams {
        core_routers: 6,
        border_routers: 3,
        ecmp_diamonds: 3,
        ..TopologyParams::default()
    };
    let c = classify(&build(diamonds, MplsConfig::ldp_default()));
    show("LDP + ECMP diamonds", &c);
    assert!(c.mono_fec_disjoint > 0 && c.multi_fec == 0);

    // Scenario 2: IGP ECMP over parallel link bundles, labels from LDP.
    let bundles = TopologyParams {
        core_routers: 6,
        border_routers: 3,
        parallel_bundles: 3,
        parallel_width: 3,
        ..TopologyParams::default()
    };
    let c = classify(&build(bundles, MplsConfig::ldp_default()));
    show("LDP + parallel bundles", &c);
    assert!(c.mono_fec_parallel > 0 && c.multi_fec == 0);

    // Scenario 3: RSVP-TE, three LSPs per pair, all pinned to the same
    // IP path — diversity exists only in the labels.
    let chain = TopologyParams { core_routers: 6, border_routers: 3, ..TopologyParams::default() };
    let c = classify(&build(chain, MplsConfig::with_te(1.0, 3, TePathMode::SamePath)));
    show("RSVP-TE (same IP path)", &c);
    assert!(c.multi_fec > 0);

    println!("\nLPR recovers the control-plane story from labels alone:");
    println!(" - one label per common IP         => one FEC => the diversity is IGP ECMP (LDP),");
    println!("   same labels but different IPs   => the 'routers' are aliases: parallel links;");
    println!(" - several labels on one common IP => several FECs => RSVP-TE traffic engineering,");
    println!("   even when every LSP rides the same physical path.");
}
