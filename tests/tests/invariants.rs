//! Property-based invariants that hold across the whole stack:
//! topology generation → control plane → data plane → traceroute →
//! LPR. These encode the paper's core reasoning as executable laws.

use integration::fixtures::{small_internet, TRANSIT};
use lpr_core::prelude::*;
use netsim::{MplsConfig, ProbeOptions, Prober, TePathMode, TopologyParams};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn run_lpr(net: &netsim::Internet) -> PipelineOutput {
    let prober = Prober::new(net, ProbeOptions::default());
    let vps: Vec<Ipv4Addr> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
    let dsts = net.topo.destinations(1);
    let traces = prober.campaign(&vps, &dsts);
    let rib = net.topo.rib();
    let keys = Pipeline::snapshot_keys(&traces);
    Pipeline::default().run(&traces, &rib, &[keys.clone(), keys])
}

fn arb_params() -> impl Strategy<Value = TopologyParams> {
    (3usize..9, 2usize..5, 0usize..3, 0usize..3, 0usize..3, any::<bool>()).prop_map(
        |(core, borders, diamonds, unbalanced, bundles, edges)| TopologyParams {
            core_routers: core,
            border_routers: borders,
            ecmp_diamonds: diamonds,
            unbalanced_diamonds: unbalanced,
            parallel_bundles: bundles,
            diamonds_at_edges: edges,
            parallel_width: 3,
            uniform_cost: 10,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// LDP's per-router label scope means a pure-LDP network can NEVER
    /// be classified Multi-FEC — this is the heart of the LPR
    /// inference (paper §3.2).
    #[test]
    fn pure_ldp_is_never_multi_fec(params in arb_params()) {
        let net = small_internet(params, MplsConfig::ldp_default());
        let out = run_lpr(&net);
        let c = out.class_counts_for(TRANSIT);
        prop_assert_eq!(c.multi_fec, 0, "{:?}", c);
    }

    /// Multi-LSP RSVP-TE pairs, conversely, must never be mistaken for
    /// ECMP: with a diversity-free chain the transit classifies as
    /// Multi-FEC or Mono-LSP only.
    #[test]
    fn te_on_chain_is_multi_fec_or_mono_lsp(
        core in 3usize..9,
        borders in 2usize..5,
        lsps in 2usize..5,
    ) {
        let params = TopologyParams {
            core_routers: core,
            border_routers: borders,
            ..TopologyParams::default()
        };
        let net = small_internet(params, MplsConfig::with_te(1.0, lsps, TePathMode::SamePath));
        let out = run_lpr(&net);
        let c = out.class_counts_for(TRANSIT);
        prop_assert_eq!(c.mono_fec(), 0, "{:?}", c);
        prop_assert_eq!(c.unclassified, 0, "{:?}", c);
    }

    /// Traces are Paris-stable: identical campaigns yield identical
    /// traces, whatever the topology.
    #[test]
    fn campaigns_are_deterministic(params in arb_params(), te in any::<bool>()) {
        let cfg = if te {
            MplsConfig::with_te(0.5, 2, TePathMode::SamePath)
        } else {
            MplsConfig::ldp_default()
        };
        let net = small_internet(params, cfg);
        let prober = Prober::new(&net, ProbeOptions::default());
        let vps: Vec<Ipv4Addr> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
        let dsts = net.topo.destinations(1);
        prop_assert_eq!(prober.campaign(&vps, &dsts), prober.campaign(&vps, &dsts));
    }

    /// Every trace reaches its destination on a loss-free network, and
    /// every reply address is attributable (RIB-complete).
    #[test]
    fn traces_complete_and_attributable(params in arb_params()) {
        let net = small_internet(params, MplsConfig::ldp_default());
        let prober = Prober::new(&net, ProbeOptions::default());
        let vps: Vec<Ipv4Addr> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
        let dsts = net.topo.destinations(1);
        let rib = net.topo.rib();
        for t in prober.campaign(&vps, &dsts) {
            prop_assert!(t.reached, "{} -> {} did not complete", t.src, t.dst);
            for h in t.responsive_hops() {
                prop_assert!(rib.lookup(h.addr.unwrap()).is_some());
            }
        }
    }

    /// warts round-trip is lossless for every simulated campaign.
    #[test]
    fn warts_roundtrip_is_lossless(params in arb_params()) {
        let net = small_internet(params, MplsConfig::with_te(0.5, 2, TePathMode::SamePath));
        let prober = Prober::new(&net, ProbeOptions::default());
        let vps: Vec<Ipv4Addr> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
        let dsts = net.topo.destinations(1);
        let traces = prober.campaign(&vps, &dsts);

        let mut w = warts::WartsWriter::new();
        let list = w.list(1, "prop");
        let cycle = w.cycle_start(list, 1, 0);
        for t in &traces {
            w.trace(&warts::trace_to_record(t, list, cycle)).unwrap();
        }
        w.cycle_stop(cycle, 1);
        let bytes = w.into_bytes();
        let parsed: Vec<_> = warts::WartsReader::new(&bytes)
            .traces()
            .unwrap()
            .iter()
            .filter_map(|r| warts::trace_to_core(r).unwrap())
            .collect();
        prop_assert_eq!(parsed, traces);
    }

    /// The filter pipeline is monotone: every stage only removes LSPs.
    #[test]
    fn filters_are_monotone(params in arb_params(), anon in 0.0f64..0.2) {
        let mut cfg = MplsConfig::with_te(0.3, 2, TePathMode::SamePath);
        cfg.anonymous_rate = anon;
        let net = small_internet(params, cfg);
        let out = run_lpr(&net);
        let mut prev = out.report.input;
        for stage in FilterStage::ALL {
            let cur = out.report.remaining[&stage];
            prop_assert!(cur <= prev, "{:?}: {} > {}", stage, cur, prev);
            prev = cur;
        }
    }

    /// Classification is insensitive to trace order.
    #[test]
    fn classification_is_order_independent(params in arb_params(), seed in any::<u64>()) {
        let net = small_internet(params, MplsConfig::with_te(0.5, 2, TePathMode::SamePath));
        let prober = Prober::new(&net, ProbeOptions::default());
        let vps: Vec<Ipv4Addr> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
        let dsts = net.topo.destinations(1);
        let mut traces = prober.campaign(&vps, &dsts);
        let rib = net.topo.rib();
        let keys = Pipeline::snapshot_keys(&traces);
        let a = Pipeline::default().run(&traces, &rib, std::slice::from_ref(&keys));

        // Deterministic shuffle driven by the seed.
        let mut s = seed;
        for i in (1..traces.len()).rev() {
            s = netsim::internet::splitmix64(s);
            traces.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let b = Pipeline::default().run(&traces, &rib, &[keys]);
        prop_assert_eq!(a.class_counts(), b.class_counts());
    }
}
