//! Ground-truth checks of the §5 label-based alias resolution: the
//! simulator knows which interfaces share a router, so every inferred
//! alias pair can be verified against the real topology — precision
//! must be 100 % (the paper's argument is that LDP label scope makes
//! these inferences sound, not merely heuristic).

use integration::fixtures::{small_internet, TRANSIT};
use lpr_core::prelude::*;
use lpr_core::aliasres::{infer_aliases, merge_router_level};
use netsim::{MplsConfig, ProbeOptions, Prober, TopologyParams};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

fn classified(net: &netsim::Internet) -> PipelineOutput {
    let prober = Prober::new(net, ProbeOptions::default());
    let vps: Vec<Ipv4Addr> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
    let dsts = net.topo.destinations(1);
    let traces = prober.campaign(&vps, &dsts);
    let rib = net.topo.rib();
    let keys = Pipeline::snapshot_keys(&traces);
    Pipeline::default().run(&traces, &rib, &[keys])
}

/// Maps every interface address to its owning router.
fn owner_map(net: &netsim::Internet) -> BTreeMap<Ipv4Addr, netsim::RouterId> {
    let mut m = BTreeMap::new();
    for iface in &net.topo.ifaces {
        m.insert(iface.addr, iface.router);
    }
    for r in &net.topo.routers {
        m.insert(r.loopback, r.id);
    }
    m
}

#[test]
fn inferred_aliases_are_real_aliases() {
    let net = small_internet(
        TopologyParams {
            core_routers: 7,
            border_routers: 3,
            parallel_bundles: 3,
            parallel_width: 3,
            ecmp_diamonds: 1,
            ..TopologyParams::default()
        },
        MplsConfig::ldp_default(),
    );
    let out = classified(&net);
    let aliases = infer_aliases(out.iotps.iter().map(|(i, _)| i));
    let owners = owner_map(&net);

    let sets = aliases.sets();
    assert!(!sets.is_empty(), "parallel bundles must reveal alias sets");
    let mut pairs = 0usize;
    for set in &sets {
        let routers: std::collections::BTreeSet<_> =
            set.iter().map(|a| owners[a]).collect();
        assert_eq!(
            routers.len(),
            1,
            "alias set {set:?} spans several routers: {routers:?}"
        );
        pairs += set.len() - 1;
    }
    assert!(pairs >= 2, "expected several alias pairs, got {pairs}");
}

#[test]
fn router_level_merge_preserves_class_counts_without_aliased_lers() {
    // With no parallel links feeding LER aliases, router-level
    // aggregation is the identity on keys.
    let net = small_internet(
        TopologyParams { core_routers: 6, border_routers: 3, ..TopologyParams::default() },
        MplsConfig::ldp_default(),
    );
    let out = classified(&net);
    let iotps: Vec<_> = out.iotps.iter().map(|(i, _)| i.clone()).collect();
    let aliases = infer_aliases(iotps.iter());
    let merged = merge_router_level(&iotps, &aliases);
    assert_eq!(merged.len(), iotps.len());
    for (_, absorbed) in &merged {
        assert_eq!(*absorbed, 1);
    }
}

#[test]
fn te_predecessor_aliases_are_sound_too() {
    let net = small_internet(
        TopologyParams { core_routers: 7, border_routers: 3, ..TopologyParams::default() },
        MplsConfig::with_te(1.0, 3, netsim::TePathMode::SamePath),
    );
    let out = classified(&net);
    assert!(out.class_counts_for(TRANSIT).multi_fec > 0);
    let aliases = infer_aliases(out.iotps.iter().map(|(i, _)| i));
    let owners = owner_map(&net);
    for set in aliases.sets() {
        let routers: std::collections::BTreeSet<_> =
            set.iter().map(|a| owners[a]).collect();
        assert_eq!(routers.len(), 1, "alias set {set:?} is wrong");
    }
}
