//! End-to-end checks of the paper's headline claims against the
//! simulated longitudinal dataset — the executable version of
//! EXPERIMENTS.md. Each test pins one qualitative result from §4 of
//! the paper that the reproduction must preserve.

use ark_dataset::campaign::{analyze_cycle, generate_cycle, CampaignOptions};
use ark_dataset::{standard_world, ATT, L3, NTT, TATA, VOD};
use lpr_core::filter::FilterStage;

/// Paper §4.2, Table 1: every filter removes a nonzero share and, end
/// to end, roughly half of the LSPs survive.
#[test]
fn table1_half_of_lsps_survive() {
    let world = standard_world();
    let opts = CampaignOptions::default();
    let data = generate_cycle(&world, 30, &opts);
    let analysis = analyze_cycle(&world, &data, 2);
    let r = &analysis.output.report;
    let final_share = r.proportion_after(FilterStage::Persistence);
    assert!(
        (0.35..=0.75).contains(&final_share),
        "expected ~0.53 of LSPs to survive, got {final_share}"
    );
}

/// Paper abstract: "the usage of MPLS has been increasing over the
/// last five years" — the fraction of traces crossing an explicit
/// tunnel and the MPLS address count both grow from 2010 to 2014.
#[test]
fn mpls_usage_grows_over_the_period() {
    let world = standard_world();
    let opts = CampaignOptions { snapshots: 1, ..Default::default() };
    let early = generate_cycle(&world, 2, &opts);
    let late = generate_cycle(&world, 50, &opts);
    let frac = |traces: &[lpr_core::trace::Trace]| {
        traces.iter().filter(|t| t.has_mpls()).count() as f64 / traces.len() as f64
    };
    assert!(
        frac(&late.snapshots[0]) > frac(&early.snapshots[0]),
        "MPLS trace fraction must grow"
    );
}

/// Paper §4.4, Fig. 10: Vodafone's Multi-FEC share grows to dominance
/// and the AS is tagged dynamic.
#[test]
fn vodafone_story() {
    let world = standard_world();
    let opts = CampaignOptions::default();
    let early = analyze_cycle(&world, &generate_cycle(&world, 5, &opts), 2);
    let late = analyze_cycle(&world, &generate_cycle(&world, 55, &opts), 2);
    let fe = early.output.class_counts_for(VOD).fractions();
    let fl = late.output.class_counts_for(VOD).fractions();
    assert!(fl[1] > fe[1], "Multi-FEC share must grow: {fe:?} -> {fl:?}");
    assert!(fl[1] > 0.5, "Multi-FEC must dominate late: {fl:?}");
    assert!(late.output.dynamic_ases.contains(&VOD), "Vodafone is dynamic");
}

/// Paper §4.4, Fig. 11: AT&T's Multi-FEC displaces Mono-FEC, and the
/// IOTP count drops around cycle 22.
#[test]
fn att_story() {
    let world = standard_world();
    let opts = CampaignOptions::default();
    let at = |cycle| analyze_cycle(&world, &generate_cycle(&world, cycle, &opts), 2);
    let before_drop = at(20).output.class_counts_for(ATT);
    let after_drop = at(24).output.class_counts_for(ATT);
    assert!(
        after_drop.total() < before_drop.total(),
        "IOTP count must drop after cycle 22: {} -> {}",
        before_drop.total(),
        after_drop.total()
    );
    let late = at(55).output.class_counts_for(ATT);
    let fe = before_drop.fractions();
    let fl = late.fractions();
    assert!(fl[1] > fe[1], "Multi-FEC grows: {fe:?} -> {fl:?}");
    assert!(fl[2] < fe[2], "Mono-FEC declines: {fe:?} -> {fl:?}");
}

/// Paper §4.4, Figs. 12–13: Tata is Mono-FEC-dominant (no TE), with
/// parallel links the larger subclass.
#[test]
fn tata_story() {
    let world = standard_world();
    let opts = CampaignOptions::default();
    let analysis = analyze_cycle(&world, &generate_cycle(&world, 15, &opts), 2);
    let c = analysis.output.class_counts_for(TATA);
    assert_eq!(c.multi_fec, 0, "Tata runs no RSVP-TE: {c:?}");
    assert!(c.mono_fec() * 2 > c.total(), "Mono-FEC dominates: {c:?}");
    assert!(
        c.mono_fec_parallel > c.mono_fec_disjoint,
        "parallel links dominate the split: {c:?}"
    );
}

/// Paper §4.4, Fig. 14: NTT is Mono-LSP-dominant and its IOTP count
/// roughly triples over the period.
#[test]
fn ntt_story() {
    let world = standard_world();
    let opts = CampaignOptions::default();
    let early = analyze_cycle(&world, &generate_cycle(&world, 3, &opts), 2)
        .output
        .class_counts_for(NTT);
    let late = analyze_cycle(&world, &generate_cycle(&world, 57, &opts), 2)
        .output
        .class_counts_for(NTT);
    assert!(early.mono_lsp * 2 > early.total(), "{early:?}");
    assert!(late.mono_lsp * 2 > late.total(), "{late:?}");
    assert!(
        late.total() >= early.total() * 2,
        "IOTP count must grow strongly: {} -> {}",
        early.total(),
        late.total()
    );
}

/// Paper §4.4, Fig. 15: Level3 has no MPLS before cycle 29, plenty
/// right after, and almost none at the end.
#[test]
fn level3_story() {
    let world = standard_world();
    let opts = CampaignOptions::default();
    let at = |cycle| {
        analyze_cycle(&world, &generate_cycle(&world, cycle, &opts), 2)
            .output
            .class_counts_for(L3)
            .total()
    };
    assert_eq!(at(25), 0, "dark before cycle 29");
    let peak = at(40);
    assert!(peak > 5, "deployed after cycle 29: {peak}");
    assert!(at(59) < peak / 2, "sharp decline after cycle 55");
}

/// Paper abstract, outcome (iii): across the featured ASes, TE *with*
/// path diversity (Multi-FEC) and MPLS *without* diversity (Mono-LSP)
/// are of comparable magnitude, and diversity is mainly ECMP+LDP.
#[test]
fn global_class_balance() {
    let world = standard_world();
    let opts = CampaignOptions::default();
    let analysis = analyze_cycle(&world, &generate_cycle(&world, 45, &opts), 2);
    let c = analysis.output.class_counts();
    assert!(c.mono_lsp > 0 && c.multi_fec > 0 && c.mono_fec() > 0, "{c:?}");
    // Same order of magnitude: neither dwarfs the other by 10x.
    assert!(c.multi_fec < c.mono_lsp * 10 && c.mono_lsp < c.multi_fec * 10, "{c:?}");
}

/// Paper §4.5 / Fig. 17: re-optimised labels climb monotonically
/// (modulo range wrap) and the busier LSR climbs faster.
#[test]
fn label_dynamics_sawtooth() {
    let world = standard_world();
    let opts = ark_dataset::dynamics::DynamicsOptions {
        minutes: 300,
        sample_every: 10,
        reopt_every: 30,
        reopt_batch: 10,
    };
    let samples = ark_dataset::dynamics::run(&world, &opts);
    let labelled: Vec<_> = samples.iter().filter(|s| s.hops.len() >= 2).collect();
    assert!(labelled.len() >= 3, "need a multi-LSR TE tunnel: {samples:?}");
    // Check each LSR's series is non-decreasing except at wraps.
    for k in 0..2 {
        let series: Vec<u32> = labelled.iter().map(|s| s.hops[k].1).collect();
        let climbs = series.windows(2).filter(|w| w[1] > w[0]).count();
        let wraps = series.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(climbs > 0, "LSR{k} labels never climb: {series:?}");
        assert!(wraps <= climbs, "LSR{k} series not sawtooth-like: {series:?}");
    }
}
