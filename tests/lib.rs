//! Integration-test crate for the `mpls-microscope` workspace.
//!
//! The actual tests live under `tests/`; this library only hosts shared
//! fixtures.

/// Shared fixtures for the integration tests.
pub mod fixtures {
    use lpr_core::lsp::Asn;
    use netsim::{AsSpec, Internet, MplsConfig, Peering, Topology, TopologyParams, Vendor};
    use std::collections::BTreeMap;

    /// A small three-AS Internet: one transit (AS 65000) with the given
    /// shape and MPLS policy, one monitor stub and two destination
    /// stubs sharing the same egress border.
    pub fn small_internet(params: TopologyParams, cfg: MplsConfig) -> Internet {
        let specs = vec![
            AsSpec::transit(65000, "transit", Vendor::Juniper, params),
            AsSpec::stub(64600, "monitors", 0, 2),
            AsSpec::stub(64700, "cust-a", 4, 0),
            AsSpec::stub(64701, "cust-b", 4, 0),
        ];
        let peerings = vec![
            Peering::new(Asn(64600), Asn(65000)).at_b(0),
            Peering::new(Asn(65000), Asn(64700)).at_a(1),
            Peering::new(Asn(65000), Asn(64701)).at_a(1),
        ];
        let topo = Topology::build_with_peerings(&specs, &peerings);
        let mut configs = BTreeMap::new();
        configs.insert(Asn(65000), cfg);
        Internet::new(topo, &configs)
    }

    /// The transit ASN used by [`small_internet`].
    pub const TRANSIT: Asn = Asn(65000);
}
